//! Chaos engine: seeded fault campaigns against a running deployment.
//!
//! [`ChaosPlan::generate`] expands one `(profile, seed)` pair into a
//! deterministic schedule of crash/restart cycles, pairwise partitions
//! with their heals, and transient loss bursts, mirroring the seed→plan
//! design of [`crate::workload`]: a fixed number of draws per fault slot,
//! so the same seed always yields the same plan, element for element.
//!
//! The planner keeps campaigns *survivable by construction*: a crash is
//! downgraded to a loss burst when it would leave fewer than
//! [`ChaosProfile::min_up`] servers alive at any instant (the paper's
//! fault model assumes at most `k − 1` of `k` replicas fail), and a node
//! is never crashed again while a previous crash/restart cycle on it is
//! still open. The downgrade consumes the slot's draws all the same, so
//! the decision never perturbs later slots.
//!
//! [`ChaosPlan::apply`] scripts the plan onto a [`ScenarioBuilder`]; the
//! trace of the resulting run can then be checked against the paper's
//! safety invariants by [`crate::oracle`].

use std::time::Duration;

use simnet::{LinkProfile, NodeId, SimRng, SimTime};

use crate::scenario::ScenarioBuilder;

/// Domain-separation constant mixed into the seed so the chaos stream is
/// independent of both the network simulator's and the workload's draws
/// for the same seed.
const CHAOS_STREAM: u64 = 0x43_48_41_4f_53; // "CHAOS"

/// Shape of a chaos campaign. All times are scenario times.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosProfile {
    /// Number of fault slots to draw (some may be downgraded to bursts).
    pub faults: u32,
    /// Faults are injected no earlier than this.
    pub window_start: Duration,
    /// Faults are injected no later than this.
    pub window_end: Duration,
    /// Shortest crash → restart delay.
    pub restart_min: Duration,
    /// Longest crash → restart delay.
    pub restart_max: Duration,
    /// Shortest partition duration.
    pub partition_min: Duration,
    /// Longest partition duration.
    pub partition_max: Duration,
    /// Shortest loss-burst duration.
    pub burst_min: Duration,
    /// Longest loss-burst duration.
    pub burst_max: Duration,
    /// Crashes are downgraded to bursts rather than let the number of
    /// live servers drop below this floor at any instant.
    pub min_up: u32,
}

impl ChaosProfile {
    /// The default campaign: six fault slots over seconds 10–40 of the
    /// run, crash/restart cycles of 5–15 s, partitions of 4–10 s and
    /// loss bursts of 2–6 s, never dropping below two live servers.
    pub fn default_campaign() -> Self {
        ChaosProfile {
            faults: 6,
            window_start: Duration::from_secs(10),
            window_end: Duration::from_secs(40),
            restart_min: Duration::from_secs(5),
            restart_max: Duration::from_secs(15),
            partition_min: Duration::from_secs(4),
            partition_max: Duration::from_secs(10),
            burst_min: Duration::from_secs(2),
            burst_max: Duration::from_secs(6),
            min_up: 2,
        }
    }
}

/// One scheduled fault of a [`ChaosPlan`].
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosFault {
    /// Crash `node` at `at` and boot a fresh replacement at `restart_at`
    /// (which rejoins through the view-synchronous merge).
    CrashRestart {
        /// When the node fails.
        at: SimTime,
        /// The failing server.
        node: NodeId,
        /// When the replacement process boots.
        restart_at: SimTime,
    },
    /// Cut the network between `a` and `b` at `at`; heal exactly this cut
    /// (and no other) at `heal_at`.
    Partition {
        /// When the cut appears.
        at: SimTime,
        /// One side (a single isolated server in generated plans).
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
        /// When this cut is removed.
        heal_at: SimTime,
    },
    /// Degrade the default link profile (correlated loss burst) from `at`
    /// until `until`, then restore the normal profile.
    Burst {
        /// When the degradation starts.
        at: SimTime,
        /// When the normal profile is restored.
        until: SimTime,
    },
}

impl ChaosFault {
    /// When the fault is injected.
    pub fn at(&self) -> SimTime {
        match *self {
            ChaosFault::CrashRestart { at, .. }
            | ChaosFault::Partition { at, .. }
            | ChaosFault::Burst { at, .. } => at,
        }
    }
}

/// A fully materialized fault campaign: every crash, restart, partition,
/// heal and burst derived from one `(profile, seed)` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// The profile the plan was generated from.
    pub profile: ChaosProfile,
    /// The servers the campaign targets.
    pub servers: Vec<NodeId>,
    /// The scheduled faults, in injection order.
    pub faults: Vec<ChaosFault>,
}

impl ChaosPlan {
    /// Generates the campaign against `servers`. Exactly five draws are
    /// consumed per fault slot regardless of the kind chosen or any
    /// survivability downgrade, so two plans from the same seed are
    /// identical element for element.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or the fault window is inverted.
    pub fn generate(profile: &ChaosProfile, servers: &[NodeId], seed: u64) -> Self {
        assert!(!servers.is_empty(), "chaos needs at least one server");
        assert!(
            profile.window_end >= profile.window_start,
            "fault window must not be inverted"
        );
        let mut rng = SimRng::seed_from_u64(seed ^ CHAOS_STREAM);
        let window = (profile.window_end - profile.window_start).as_secs_f64();
        let span = |min: Duration, max: Duration, u: f64| {
            Duration::from_secs_f64(
                min.as_secs_f64() + (max.as_secs_f64() - min.as_secs_f64()).max(0.0) * u,
            )
        };
        // Open crash intervals so far, for the survivability floor:
        // (node, down_from, up_again).
        let mut downtimes: Vec<(NodeId, SimTime, SimTime)> = Vec::new();
        let mut faults = Vec::with_capacity(profile.faults as usize);
        for _ in 0..profile.faults {
            // Draw schedule (always 5 draws, branches notwithstanding):
            // kind, time, target, aux, duration.
            let u_kind = rng.gen_f64();
            let u_time = rng.gen_f64();
            let u_target = rng.gen_f64();
            let _u_aux = rng.gen_f64(); // reserved; keeps slots re-shapeable
            let u_dur = rng.gen_f64();
            let at = SimTime::from_secs_f64(profile.window_start.as_secs_f64() + window * u_time);
            let target =
                servers[((u_target * servers.len() as f64) as usize).min(servers.len() - 1)];
            if u_kind < 0.4 {
                let restart_at = at + span(profile.restart_min, profile.restart_max, u_dur);
                if Self::crash_is_survivable(
                    servers.len(),
                    profile.min_up,
                    &downtimes,
                    target,
                    at,
                    restart_at,
                ) {
                    downtimes.push((target, at, restart_at));
                    faults.push(ChaosFault::CrashRestart {
                        at,
                        node: target,
                        restart_at,
                    });
                    continue;
                }
                // Unsurvivable: fall through to a burst of the same length
                // (the draws are already consumed either way).
                faults.push(ChaosFault::Burst {
                    at,
                    until: at + span(profile.restart_min, profile.restart_max, u_dur),
                });
            } else if u_kind < 0.7 && servers.len() >= 2 {
                let rest: Vec<NodeId> = servers.iter().copied().filter(|&s| s != target).collect();
                let heal_at = at + span(profile.partition_min, profile.partition_max, u_dur);
                faults.push(ChaosFault::Partition {
                    at,
                    a: vec![target],
                    b: rest,
                    heal_at,
                });
            } else {
                faults.push(ChaosFault::Burst {
                    at,
                    until: at + span(profile.burst_min, profile.burst_max, u_dur),
                });
            }
        }
        faults.sort_by_key(|f| f.at());
        ChaosPlan {
            profile: profile.clone(),
            servers: servers.to_vec(),
            faults,
        }
    }

    /// Whether crashing `node` over `[at, restart_at)` keeps at least
    /// `min_up` servers alive throughout and does not overlap an open
    /// crash/restart cycle on the same node.
    fn crash_is_survivable(
        total: usize,
        min_up: u32,
        downtimes: &[(NodeId, SimTime, SimTime)],
        node: NodeId,
        at: SimTime,
        restart_at: SimTime,
    ) -> bool {
        let overlaps = |from: SimTime, to: SimTime| at < to && from < restart_at;
        let mut concurrent = 0u32;
        for &(other, from, to) in downtimes {
            if overlaps(from, to) {
                if other == node {
                    return false; // cycle on this node still open
                }
                concurrent += 1;
            }
        }
        // Conservative: count every overlapping downtime as simultaneous.
        total as u32 > min_up + concurrent
    }

    /// Number of faults of each kind `(crash_restarts, partitions,
    /// bursts)`.
    pub fn kind_counts(&self) -> (u32, u32, u32) {
        let mut counts = (0, 0, 0);
        for fault in &self.faults {
            match fault {
                ChaosFault::CrashRestart { .. } => counts.0 += 1,
                ChaosFault::Partition { .. } => counts.1 += 1,
                ChaosFault::Burst { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// The degraded link profile used for loss bursts: `normal` plus a
    /// Gilbert–Elliott chain producing correlated drop runs (~8% average
    /// loss). The chain is tuned to stay below the failure detector's
    /// false-suspicion threshold (8 consecutive heartbeat losses): drop
    /// runs average two packets at 50% loss, so bursts stress
    /// retransmission and refill without splitting the membership — a
    /// split would be a *virtual partition* the oracle cannot excuse.
    pub fn degraded_profile(normal: &LinkProfile) -> LinkProfile {
        normal.clone().with_burst_loss(0.1, 0.5, 0.5)
    }

    /// Scripts the whole campaign onto `builder`. `normal` must be the
    /// builder's link profile; bursts swap in
    /// [`ChaosPlan::degraded_profile`] and swap `normal` back afterwards.
    pub fn apply(&self, builder: &mut ScenarioBuilder, normal: &LinkProfile) {
        let degraded = Self::degraded_profile(normal);
        for fault in &self.faults {
            match fault {
                ChaosFault::CrashRestart {
                    at,
                    node,
                    restart_at,
                } => {
                    builder.crash_at(*at, *node);
                    builder.restart_at(*restart_at, *node);
                }
                ChaosFault::Partition { at, a, b, heal_at } => {
                    builder.partition_at(*at, a, b);
                    builder.heal_at(*heal_at, a, b);
                }
                ChaosFault::Burst { at, until } => {
                    builder.network_at(*at, degraded.clone());
                    builder.network_at(*until, normal.clone());
                }
            }
        }
    }

    /// Renders the plan deterministically (integer microseconds only):
    /// equal plans produce byte-identical text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (crashes, partitions, bursts) = self.kind_counts();
        let _ = writeln!(
            out,
            "chaos plan: {} fault(s) = {crashes} crash/restart, {partitions} partition, {bursts} burst",
            self.faults.len()
        );
        for fault in &self.faults {
            match fault {
                ChaosFault::CrashRestart {
                    at,
                    node,
                    restart_at,
                } => {
                    let _ = writeln!(
                        out,
                        "  {}us crash {node} restart {}us",
                        at.as_micros(),
                        restart_at.as_micros()
                    );
                }
                ChaosFault::Partition { at, a, b, heal_at } => {
                    let side = |nodes: &[NodeId]| {
                        nodes
                            .iter()
                            .map(|n| n.0.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    let _ = writeln!(
                        out,
                        "  {}us partition [{}]|[{}] heal {}us",
                        at.as_micros(),
                        side(a),
                        side(b),
                        heal_at.as_micros()
                    );
                }
                ChaosFault::Burst { at, until } => {
                    let _ = writeln!(
                        out,
                        "  {}us burst until {}us",
                        at.as_micros(),
                        until.as_micros()
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId).collect()
    }

    #[test]
    fn plans_are_reproducible_and_seed_sensitive() {
        let profile = ChaosProfile::default_campaign();
        let a = ChaosPlan::generate(&profile, &servers(4), 42);
        let b = ChaosPlan::generate(&profile, &servers(4), 42);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        let c = ChaosPlan::generate(&profile, &servers(4), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn plan_respects_the_profile_bounds() {
        let profile = ChaosProfile::default_campaign();
        for seed in 0..32 {
            let plan = ChaosPlan::generate(&profile, &servers(4), seed);
            assert_eq!(plan.faults.len(), 6);
            let lo = SimTime::from_secs(10);
            let hi = SimTime::from_secs(40);
            for fault in &plan.faults {
                assert!(fault.at() >= lo && fault.at() <= hi);
                match fault {
                    ChaosFault::CrashRestart { at, restart_at, .. } => {
                        let gap = restart_at.saturating_since(*at);
                        assert!(gap >= profile.restart_min && gap <= profile.restart_max);
                    }
                    ChaosFault::Partition { at, heal_at, a, b } => {
                        let gap = heal_at.saturating_since(*at);
                        assert!(gap >= profile.partition_min && gap <= profile.partition_max);
                        assert_eq!(a.len(), 1);
                        assert_eq!(b.len(), 3);
                        assert!(!b.contains(&a[0]));
                    }
                    ChaosFault::Burst { at, until } => {
                        assert!(*until > *at);
                    }
                }
            }
            for pair in plan.faults.windows(2) {
                assert!(pair[0].at() <= pair[1].at(), "faults must be time-ordered");
            }
        }
    }

    #[test]
    fn crashes_never_drop_below_the_floor() {
        // With only two servers and min_up = 2, every crash slot must be
        // downgraded: no CrashRestart may survive planning.
        let profile = ChaosProfile::default_campaign();
        for seed in 0..64 {
            let plan = ChaosPlan::generate(&profile, &servers(2), seed);
            let (crashes, _, _) = plan.kind_counts();
            assert_eq!(crashes, 0, "seed {seed} crashed below the floor");
        }
        // With four servers at most two may ever be down at once.
        for seed in 0..64 {
            let plan = ChaosPlan::generate(&profile, &servers(4), seed);
            let cycles: Vec<(SimTime, SimTime)> = plan
                .faults
                .iter()
                .filter_map(|f| match f {
                    ChaosFault::CrashRestart { at, restart_at, .. } => Some((*at, *restart_at)),
                    _ => None,
                })
                .collect();
            // Max simultaneous downtime is reached at some interval start:
            // count how many cycles contain each start instant.
            for &(start, _) in &cycles {
                let down = cycles
                    .iter()
                    .filter(|&&(b0, b1)| b0 <= start && start < b1)
                    .count();
                assert!(down <= 2, "seed {seed}: three servers down at once");
            }
        }
    }

    #[test]
    fn degraded_profile_adds_burst_loss() {
        let normal = LinkProfile::lan();
        let degraded = ChaosPlan::degraded_profile(&normal);
        assert!(degraded.burst.is_some());
        assert_eq!(normal.burst, None);
    }
}

//! Measurement primitives: sampled time series, cumulative event counters
//! and CSV export — the machinery behind every figure in EXPERIMENTS.md.

use std::fmt::Write as _;

use simnet::SimTime;

/// A periodically sampled series of `(time, value)` points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at.as_secs_f64(), value));
    }

    /// All `(seconds, value)` points in order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last sampled value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Maximum value over the whole series.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Minimum value within the window `[from, to]` seconds.
    pub fn min_in_window(&self, from: f64, to: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|&&(t, _)| t >= from && t <= to)
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Mean value within the window `[from, to]` seconds.
    pub fn mean_in_window(&self, from: f64, to: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t <= to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// First time the series reaches at least `threshold`.
    pub fn first_reach(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, v)| v >= threshold)
            .map(|&(t, _)| t)
    }
}

/// A monotonically non-decreasing counter recorded as step events, for the
/// paper's "cumulative number of X" plots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cumulative {
    events: Vec<(f64, u64)>,
    current: u64,
}

impl Cumulative {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Cumulative::default()
    }

    /// Adds `n` occurrences at time `at`.
    pub fn add(&mut self, at: SimTime, n: u64) {
        if n == 0 {
            return;
        }
        self.current += n;
        self.events.push((at.as_secs_f64(), self.current));
    }

    /// Current total.
    pub fn total(&self) -> u64 {
        self.current
    }

    /// The `(seconds, running total)` step points.
    pub fn steps(&self) -> &[(f64, u64)] {
        &self.events
    }

    /// Total accumulated strictly before `t` seconds.
    pub fn total_before(&self, t: f64) -> u64 {
        self.events
            .iter()
            .rev()
            .find(|&&(at, _)| at < t)
            .map_or(0, |&(_, v)| v)
    }

    /// Occurrences within the window `[from, to]` seconds.
    pub fn in_window(&self, from: f64, to: f64) -> u64 {
        self.total_before(to) - self.total_before(from)
    }
}

/// The `q`-quantile (0.0–1.0) of a sample set, by nearest-rank on a sorted
/// copy. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any sample is NaN.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[rank])
}

/// Merges several cumulative counters into one combined step sequence
/// (e.g. "skipped" = overflow discards + loss gaps, plotted together).
pub fn merge_cumulative(counters: &[&Cumulative]) -> Vec<(f64, u64)> {
    let mut events: Vec<(f64, u64)> = Vec::new();
    for counter in counters {
        let mut prev = 0;
        for &(t, total) in counter.steps() {
            events.push((t, total - prev));
            prev = total;
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("times are finite"));
    let mut running = 0;
    events
        .into_iter()
        .map(|(t, delta)| {
            running += delta;
            (t, running)
        })
        .collect()
}

/// Renders aligned `(time, value)` rows — one column set per series — as
/// CSV with the given headers. Series are emitted in row-major order of
/// their own points (they need not share timestamps).
pub fn series_to_csv(header: &str, series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 16 + header.len() + 16);
    let _ = writeln!(out, "time_s,{header}");
    for &(t, v) in series.points() {
        let _ = writeln!(out, "{t:.3},{v:.3}");
    }
    out
}

/// Renders a cumulative counter as CSV steps.
pub fn cumulative_to_csv(header: &str, counter: &Cumulative) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "time_s,{header}");
    for &(t, v) in counter.steps() {
        let _ = writeln!(out, "{t:.3},{v}");
    }
    out
}

/// Downsamples a series to at most `n` evenly spaced points (for compact
/// terminal plots).
pub fn downsample(series: &TimeSeries, n: usize) -> Vec<(f64, f64)> {
    let pts = series.points();
    if pts.len() <= n || n == 0 {
        return pts.to_vec();
    }
    (0..n)
        .map(|i| pts[i * (pts.len() - 1) / (n - 1).max(1)])
        .collect()
}

/// A quick ASCII sparkline of a series (terminal-friendly figures).
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let pts = downsample(series, width);
    let max = pts.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    let min = pts.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
    if pts.is_empty() || !max.is_finite() || !min.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    pts.iter()
        .map(|&(_, v)| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn series_statistics() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i as f64), i as f64 * 2.0);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.last(), Some(18.0));
        assert_eq!(s.max(), Some(18.0));
        assert_eq!(s.min_in_window(2.0, 5.0), Some(4.0));
        assert_eq!(s.mean_in_window(0.0, 4.0), Some(4.0));
        assert_eq!(s.first_reach(10.0), Some(5.0));
        assert_eq!(s.first_reach(100.0), None);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean_in_window(0.0, 1.0), None);
    }

    #[test]
    fn cumulative_steps_and_windows() {
        let mut c = Cumulative::new();
        c.add(t(1.0), 2);
        c.add(t(2.0), 0); // no-op
        c.add(t(5.0), 3);
        assert_eq!(c.total(), 5);
        assert_eq!(c.steps().len(), 2);
        assert_eq!(c.total_before(1.5), 2);
        assert_eq!(c.total_before(0.5), 0);
        assert_eq!(c.in_window(0.9, 6.0), 5);
        assert_eq!(c.in_window(1.5, 6.0), 3);
    }

    #[test]
    fn csv_round_trips_shape() {
        let mut s = TimeSeries::new();
        s.push(t(0.5), 1.0);
        let csv = series_to_csv("occupancy", &s);
        assert!(csv.starts_with("time_s,occupancy\n"));
        assert!(csv.contains("0.500,1.000"));
        let mut c = Cumulative::new();
        c.add(t(3.0), 7);
        let csv = cumulative_to_csv("skipped", &c);
        assert!(csv.contains("3.000,7"));
    }

    #[test]
    fn downsample_bounds() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(t(i as f64), i as f64);
        }
        let d = downsample(&s, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].1, 0.0);
        assert_eq!(d[9].1, 99.0);
        let all = downsample(&s, 1000);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 0.0), Some(1.0));
        assert_eq!(percentile(&samples, 0.5), Some(51.0));
        assert_eq!(percentile(&samples, 1.0), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn percentile_validates_q() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn merging_counters_interleaves_steps() {
        let mut a = Cumulative::new();
        a.add(t(1.0), 2);
        a.add(t(5.0), 1);
        let mut b = Cumulative::new();
        b.add(t(3.0), 10);
        let merged = merge_cumulative(&[&a, &b]);
        assert_eq!(merged, vec![(1.0, 2), (3.0, 12), (5.0, 13)]);
        assert!(merge_cumulative(&[]).is_empty());
    }

    #[test]
    fn sparkline_renders() {
        let mut s = TimeSeries::new();
        for i in 0..20 {
            s.push(t(i as f64), (i % 5) as f64);
        }
        let line = sparkline(&s, 10);
        assert_eq!(line.chars().count(), 10);
    }
}

//! Measurement primitives: sampled time series, cumulative event counters
//! and CSV export — the machinery behind every figure in EXPERIMENTS.md.

use std::fmt::Write as _;

use simnet::SimTime;

/// A periodically sampled series of `(time, value)` points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at.as_secs_f64(), value));
    }

    /// All `(seconds, value)` points in order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last sampled value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Maximum value over the whole series, in one pass with no
    /// intermediate allocation.
    pub fn max(&self) -> Option<f64> {
        let mut max: Option<f64> = None;
        for &(_, v) in &self.points {
            max = Some(max.map_or(v, |m| m.max(v)));
        }
        max
    }

    /// Minimum value within the window `[from, to]` seconds, in one pass
    /// with no intermediate allocation.
    pub fn min_in_window(&self, from: f64, to: f64) -> Option<f64> {
        let mut min: Option<f64> = None;
        for &(t, v) in &self.points {
            if t >= from && t <= to {
                min = Some(min.map_or(v, |m| m.min(v)));
            }
        }
        min
    }

    /// Mean value within the window `[from, to]` seconds, streaming a
    /// running sum and count in one pass instead of collecting the window
    /// into an intermediate `Vec`.
    pub fn mean_in_window(&self, from: f64, to: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0u64;
        for &(t, v) in &self.points {
            if t >= from && t <= to {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// First time the series reaches at least `threshold`.
    pub fn first_reach(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, v)| v >= threshold)
            .map(|&(t, _)| t)
    }
}

/// A monotonically non-decreasing counter recorded as step events, for the
/// paper's "cumulative number of X" plots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cumulative {
    events: Vec<(f64, u64)>,
    current: u64,
}

impl Cumulative {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Cumulative::default()
    }

    /// Adds `n` occurrences at time `at`.
    pub fn add(&mut self, at: SimTime, n: u64) {
        if n == 0 {
            return;
        }
        self.current += n;
        self.events.push((at.as_secs_f64(), self.current));
    }

    /// Current total.
    pub fn total(&self) -> u64 {
        self.current
    }

    /// The `(seconds, running total)` step points.
    pub fn steps(&self) -> &[(f64, u64)] {
        &self.events
    }

    /// Total accumulated strictly before `t` seconds.
    pub fn total_before(&self, t: f64) -> u64 {
        self.events
            .iter()
            .rev()
            .find(|&&(at, _)| at < t)
            .map_or(0, |&(_, v)| v)
    }

    /// Occurrences within the window `[from, to]` seconds.
    pub fn in_window(&self, from: f64, to: f64) -> u64 {
        self.total_before(to) - self.total_before(from)
    }
}

/// Sub-buckets per octave in [`Histogram`]: 16 linear steps, bounding the
/// relative quantile error at ~6%.
const HIST_SUB_BITS: u32 = 4;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;

/// A log-linear latency histogram (HdrHistogram-style, sized for
/// microsecond-to-hours durations expressed in seconds).
///
/// Samples are bucketed at microsecond granularity: exact below 16 µs, then
/// `HIST_SUB` linear sub-buckets per power-of-two octave, so quantiles
/// carry at most ~6% relative error while the whole structure stays under
/// a thousand `u64` counters regardless of sample count. Unlike
/// [`percentile`], recording is O(1) and querying never sorts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

fn hist_bucket_index(us: u64) -> usize {
    if us < HIST_SUB as u64 {
        us as usize
    } else {
        let msb = 63 - us.leading_zeros();
        let octave = (msb - HIST_SUB_BITS) as usize;
        let sub = ((us >> (msb - HIST_SUB_BITS)) & (HIST_SUB as u64 - 1)) as usize;
        HIST_SUB + octave * HIST_SUB + sub
    }
}

/// Largest duration (µs) falling into bucket `idx` — the value quantiles
/// report for samples in that bucket.
fn hist_bucket_upper_us(idx: usize) -> u64 {
    if idx < HIST_SUB {
        idx as u64
    } else {
        let octave = (idx - HIST_SUB) / HIST_SUB;
        let sub = ((idx - HIST_SUB) % HIST_SUB) as u64;
        let width = 1u64 << octave;
        (HIST_SUB as u64 + sub) * width + width - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a duration in seconds. Negative values clamp to zero;
    /// non-finite values are ignored.
    pub fn record(&mut self, seconds: f64) {
        if !seconds.is_finite() {
            return;
        }
        let seconds = seconds.max(0.0);
        let us = (seconds * 1e6).round() as u64;
        let idx = hist_bucket_index(us);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = seconds;
            self.max = seconds;
        } else {
            self.min = self.min.min(seconds);
            self.max = self.max.max(seconds);
        }
        self.count += 1;
        self.sum += seconds;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (exact, not bucketed), in seconds.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (exact, not bucketed), in seconds.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples (exact, not bucketed), in seconds.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// The `q`-quantile (0.0–1.0) in seconds: the upper edge of the bucket
    /// holding the nearest-rank sample, clamped to the observed
    /// `[min, max]`. Monotone in `q` and always bounded by min/max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let value = hist_bucket_upper_us(idx) as f64 / 1e6;
                return Some(value.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (idx, &n) in other.buckets.iter().enumerate() {
            self.buckets[idx] += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// The `q`-quantile (0.0–1.0) of a sample set, by nearest-rank on a sorted
/// copy. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any sample is NaN.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[rank])
}

/// Merges several cumulative counters into one combined step sequence
/// (e.g. "skipped" = overflow discards + loss gaps, plotted together).
pub fn merge_cumulative(counters: &[&Cumulative]) -> Vec<(f64, u64)> {
    let mut events: Vec<(f64, u64)> = Vec::new();
    for counter in counters {
        let mut prev = 0;
        for &(t, total) in counter.steps() {
            events.push((t, total - prev));
            prev = total;
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("times are finite"));
    let mut running = 0;
    events
        .into_iter()
        .map(|(t, delta)| {
            running += delta;
            (t, running)
        })
        .collect()
}

/// Renders aligned `(time, value)` rows — one column set per series — as
/// CSV with the given headers. Series are emitted in row-major order of
/// their own points (they need not share timestamps).
pub fn series_to_csv(header: &str, series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 16 + header.len() + 16);
    let _ = writeln!(out, "time_s,{header}");
    for &(t, v) in series.points() {
        let _ = writeln!(out, "{t:.3},{v:.3}");
    }
    out
}

/// Renders a cumulative counter as CSV steps.
pub fn cumulative_to_csv(header: &str, counter: &Cumulative) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "time_s,{header}");
    for &(t, v) in counter.steps() {
        let _ = writeln!(out, "{t:.3},{v}");
    }
    out
}

/// Downsamples a series to at most `n` evenly spaced points (for compact
/// terminal plots).
pub fn downsample(series: &TimeSeries, n: usize) -> Vec<(f64, f64)> {
    let pts = series.points();
    if pts.len() <= n || n == 0 {
        return pts.to_vec();
    }
    (0..n)
        .map(|i| pts[i * (pts.len() - 1) / (n - 1).max(1)])
        .collect()
}

/// A quick ASCII sparkline of a series (terminal-friendly figures).
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let pts = downsample(series, width);
    let max = pts.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    let min = pts.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
    if pts.is_empty() || !max.is_finite() || !min.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    pts.iter()
        .map(|&(_, v)| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn series_statistics() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i as f64), i as f64 * 2.0);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.last(), Some(18.0));
        assert_eq!(s.max(), Some(18.0));
        assert_eq!(s.min_in_window(2.0, 5.0), Some(4.0));
        assert_eq!(s.mean_in_window(0.0, 4.0), Some(4.0));
        assert_eq!(s.first_reach(10.0), Some(5.0));
        assert_eq!(s.first_reach(100.0), None);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean_in_window(0.0, 1.0), None);
    }

    #[test]
    fn cumulative_steps_and_windows() {
        let mut c = Cumulative::new();
        c.add(t(1.0), 2);
        c.add(t(2.0), 0); // no-op
        c.add(t(5.0), 3);
        assert_eq!(c.total(), 5);
        assert_eq!(c.steps().len(), 2);
        assert_eq!(c.total_before(1.5), 2);
        assert_eq!(c.total_before(0.5), 0);
        assert_eq!(c.in_window(0.9, 6.0), 5);
        assert_eq!(c.in_window(1.5, 6.0), 3);
    }

    #[test]
    fn csv_round_trips_shape() {
        let mut s = TimeSeries::new();
        s.push(t(0.5), 1.0);
        let csv = series_to_csv("occupancy", &s);
        assert!(csv.starts_with("time_s,occupancy\n"));
        assert!(csv.contains("0.500,1.000"));
        let mut c = Cumulative::new();
        c.add(t(3.0), 7);
        let csv = cumulative_to_csv("skipped", &c);
        assert!(csv.contains("3.000,7"));
    }

    #[test]
    fn downsample_bounds() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(t(i as f64), i as f64);
        }
        let d = downsample(&s, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].1, 0.0);
        assert_eq!(d[9].1, 99.0);
        let all = downsample(&s, 1000);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn histogram_buckets_are_a_partition() {
        // Every µs value lands in exactly one bucket whose bounds contain it.
        for us in (0u64..4096).chain([1 << 20, (1 << 40) + 12345, u64::MAX / 2]) {
            let idx = hist_bucket_index(us);
            assert!(us <= hist_bucket_upper_us(idx), "us={us} idx={idx}");
            if idx > 0 {
                assert!(
                    hist_bucket_upper_us(idx - 1) < us,
                    "us={us} fits the previous bucket too"
                );
            }
        }
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for ms in 1..=1000u32 {
            h.record(f64::from(ms) / 1000.0); // 1ms..1s uniform
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(0.001));
        assert_eq!(h.max(), Some(1.0));
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 0.5).abs() < 0.5 * 0.08, "p50={p50}");
        assert!((p99 - 0.99).abs() < 0.99 * 0.08, "p99={p99}");
        assert!(p50 <= p99);
        let mean = h.mean().unwrap();
        assert!((mean - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(0.010);
        let mut b = Histogram::new();
        b.record(0.500);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(0.010));
        assert_eq!(a.max(), Some(2.0));
        assert_eq!(a.quantile(1.0), Some(2.0));
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let mut h = Histogram::new();
        h.record(-3.0); // clamps to zero
        h.record(f64::NAN); // ignored
        h.record(f64::INFINITY); // ignored
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 0.0), Some(1.0));
        assert_eq!(percentile(&samples, 0.5), Some(51.0));
        assert_eq!(percentile(&samples, 1.0), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn percentile_validates_q() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn merging_counters_interleaves_steps() {
        let mut a = Cumulative::new();
        a.add(t(1.0), 2);
        a.add(t(5.0), 1);
        let mut b = Cumulative::new();
        b.add(t(3.0), 10);
        let merged = merge_cumulative(&[&a, &b]);
        assert_eq!(merged, vec![(1.0, 2), (3.0, 12), (5.0, 13)]);
        assert!(merge_cumulative(&[]).is_empty());
    }

    #[test]
    fn sparkline_renders() {
        let mut s = TimeSeries::new();
        for i in 0..20 {
            s.push(t(i as f64), (i % 5) as f64);
        }
        let line = sparkline(&s, 10);
        assert_eq!(line.chars().count(), 10);
    }
}

//! Scenario harness: wires servers and clients onto the simulated network
//! and scripts the fault/migration events of the paper's evaluation.
//!
//! [`ScenarioBuilder`] declares the deployment (movies, replicas, clients,
//! link profile) and the event script (crashes, server bring-ups, VCR
//! operations, partitions); [`VodSim`] runs it and exposes the recorded
//! statistics. [`presets`] contains ready-made builders for the paper's
//! two measurement scenarios (Figures 4 and 5).
//!
//! ```
//! use ftvod_core::protocol::ClientId;
//! use ftvod_core::scenario::ScenarioBuilder;
//! use media::{Movie, MovieId, MovieSpec};
//! use simnet::{LinkProfile, NodeId, SimTime};
//! use std::time::Duration;
//!
//! let movie = Movie::generate(
//!     MovieId(1),
//!     &MovieSpec::paper_default().with_duration(Duration::from_secs(30)),
//! );
//! let mut builder = ScenarioBuilder::new(1);
//! builder
//!     .network(LinkProfile::lan())
//!     .movie(movie, &[NodeId(1), NodeId(2)])
//!     .server(NodeId(1))
//!     .server(NodeId(2))
//!     .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2));
//! let mut sim = builder.build();
//! sim.run_until(SimTime::from_secs(12));
//! let stats = sim.client_stats(ClientId(1)).expect("client exists");
//! assert!(stats.frames_received > 200);
//! assert_eq!(stats.stalls.total(), 0);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use media::{FrameNo, Movie, MovieId};
use simnet::{LinkProfile, NodeId, SimTime, Simulation, SiteTopology};

use crate::client::{ClientStats, VodClient, WatchRequest};
use crate::config::VodConfig;
use crate::profile::{ProfileHandle, ProfileReport};
use crate::protocol::{ClientId, VodWire};
use crate::server::{Replica, ServerStats, VodServer};
use crate::trace::{RunReport, TraceHandle, VodEvent};

/// A VCR operation scheduled in a scenario script.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VcrOp {
    /// Pause playback.
    Pause,
    /// Resume playback.
    Resume,
    /// Random access to a frame.
    Seek(FrameNo),
    /// Change the quality cap (max fps).
    SetQuality(u32),
    /// Change the playback speed (percent of normal).
    SetSpeed(u32),
    /// End the session.
    Stop,
}

#[derive(Clone, Debug)]
struct ClientSetup {
    id: ClientId,
    node: NodeId,
    movie: MovieId,
    at: SimTime,
    max_fps: Option<u32>,
    start_at: FrameNo,
}

#[derive(Clone, Debug)]
enum Scripted {
    Vcr { client: ClientId, op: VcrOp },
    Shutdown { node: NodeId },
}

/// A scheduled override of the links between two node sets: `None`
/// restores the profile the topology dictates.
type LinkOverride = (SimTime, Vec<NodeId>, Vec<NodeId>, Option<LinkProfile>);

/// Declarative description of a deployment plus its event script.
#[derive(Debug)]
pub struct ScenarioBuilder {
    seed: u64,
    profile: LinkProfile,
    cfg: VodConfig,
    movies: BTreeMap<MovieId, (Arc<Movie>, Vec<NodeId>)>,
    server_universe: BTreeSet<NodeId>,
    initial_servers: BTreeSet<NodeId>,
    late_servers: Vec<(SimTime, NodeId)>,
    crashes: Vec<(SimTime, NodeId)>,
    restarts: Vec<(SimTime, NodeId)>,
    shutdowns: Vec<(SimTime, NodeId)>,
    partitions: Vec<(SimTime, Vec<NodeId>, Vec<NodeId>)>,
    heals: Vec<SimTime>,
    pair_heals: Vec<(SimTime, Vec<NodeId>, Vec<NodeId>)>,
    profile_changes: Vec<(SimTime, LinkProfile)>,
    topology: Option<SiteTopology>,
    link_overrides: Vec<LinkOverride>,
    clients: Vec<ClientSetup>,
    script: Vec<(SimTime, Scripted)>,
    event_capacity: Option<usize>,
    /// `Some(capacity)` turns on cost profiling; the capacity bounds the
    /// flamechart span buffer (0 = aggregate totals only).
    profile_capacity: Option<usize>,
}

impl ScenarioBuilder {
    /// Creates a builder with the paper's default configuration, an ideal
    /// network and the given determinism seed.
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            profile: LinkProfile::lan(),
            cfg: VodConfig::paper_default(),
            movies: BTreeMap::new(),
            server_universe: BTreeSet::new(),
            initial_servers: BTreeSet::new(),
            late_servers: Vec::new(),
            crashes: Vec::new(),
            restarts: Vec::new(),
            shutdowns: Vec::new(),
            partitions: Vec::new(),
            heals: Vec::new(),
            pair_heals: Vec::new(),
            profile_changes: Vec::new(),
            topology: None,
            link_overrides: Vec::new(),
            clients: Vec::new(),
            script: Vec::new(),
            event_capacity: None,
            profile_capacity: None,
        }
    }

    /// Opts the built simulation into event recording: every layer's
    /// [`VodEvent`]s are captured in a ring buffer of `capacity` events,
    /// exposed through [`VodSim::trace`], [`VodSim::events_jsonl`] and
    /// [`VodSim::report`]. Recording is passive — the simulated outcomes
    /// are bit-identical with and without it.
    pub fn record_events(&mut self, capacity: usize) -> &mut Self {
        self.event_capacity = Some(capacity);
        self
    }

    /// Opts the built simulation into cost profiling: scheduler counters
    /// ([`simnet::SimProfile`]) plus per-subsystem wall-clock spans,
    /// exposed through [`VodSim::profile`] and [`VodSim::profile_report`].
    /// Profiling is passive — simulated outcomes are bit-identical with
    /// and without it, and all non-wall-clock fields are deterministic.
    pub fn profile_costs(&mut self) -> &mut Self {
        self.profile_capacity = Some(0);
        self
    }

    /// Like [`ScenarioBuilder::profile_costs`], additionally retaining up
    /// to `capacity` individual spans for Chrome-trace flamechart export
    /// ([`crate::profile::ProfileHandle::chrome_trace_json`]).
    pub fn profile_flamechart(&mut self, capacity: usize) -> &mut Self {
        self.profile_capacity = Some(capacity.max(1));
        self
    }

    /// Sets the link profile for every link (default: LAN).
    pub fn network(&mut self, profile: LinkProfile) -> &mut Self {
        self.profile = profile;
        self
    }

    /// Replaces the service configuration.
    pub fn config(&mut self, cfg: VodConfig) -> &mut Self {
        self.cfg = cfg;
        self
    }

    /// Adds a movie replicated on `holders` (server nodes).
    pub fn movie(&mut self, movie: Movie, holders: &[NodeId]) -> &mut Self {
        self.server_universe.extend(holders.iter().copied());
        self.movies
            .insert(movie.id(), (Arc::new(movie), holders.to_vec()));
        self
    }

    /// Boots a server at time zero.
    pub fn server(&mut self, node: NodeId) -> &mut Self {
        self.server_universe.insert(node);
        self.initial_servers.insert(node);
        self
    }

    /// Boots a server at `at` (the paper's "brought up on the fly").
    pub fn server_at(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.server_universe.insert(node);
        self.late_servers.push((at, node));
        self
    }

    /// Crashes a server at `at`.
    pub fn crash_at(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.crashes.push((at, node));
        self
    }

    /// Restarts a previously crashed server at `at` with a *fresh*
    /// process (a reboot loses all volatile memory). The replacement
    /// rejoins the server group and its movie groups instead of creating
    /// them, re-learns per-client state from the survivors' periodic sync
    /// and receives clients back through the deterministic redistribution
    /// (paper §5.2). The node must have been crashed before `at`.
    pub fn restart_at(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.server_universe.insert(node);
        self.restarts.push((at, node));
        self
    }

    /// Gracefully detaches a server at `at` (planned maintenance: the
    /// handoff happens without waiting for failure detection).
    pub fn shutdown_at(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.shutdowns.push((at, node));
        self
    }

    /// Partitions the network between `a` and `b` at `at`.
    pub fn partition_at(&mut self, at: SimTime, a: &[NodeId], b: &[NodeId]) -> &mut Self {
        self.partitions.push((at, a.to_vec(), b.to_vec()));
        self
    }

    /// Heals all partitions at `at`.
    pub fn heal_all_at(&mut self, at: SimTime) -> &mut Self {
        self.heals.push(at);
        self
    }

    /// Heals only the partition between `a` and `b` at `at`, leaving any
    /// other cuts in place (needed when faults overlap).
    pub fn heal_at(&mut self, at: SimTime, a: &[NodeId], b: &[NodeId]) -> &mut Self {
        self.pair_heals.push((at, a.to_vec(), b.to_vec()));
        self
    }

    /// Replaces the default link profile at `at` mid-run (scripted
    /// degradations: loss/jitter bursts and their later restoration).
    /// Per-link overrides are unaffected.
    pub fn network_at(&mut self, at: SimTime, profile: LinkProfile) -> &mut Self {
        self.profile_changes.push((at, profile));
        self
    }

    /// Installs a site topology: intra-site traffic uses the topology's
    /// LAN profile, cross-site traffic its WAN profile. Scheduled
    /// overrides ([`Self::wan_degrade_at`]) and explicit per-link
    /// overrides still win over the topology.
    pub fn topology(&mut self, topo: SiteTopology) -> &mut Self {
        self.topology = Some(topo);
        self
    }

    /// Degrades the links between `a` and `b` (both directions) to
    /// `profile` at `at` — a WAN brownout between two sites. Pair with
    /// [`Self::wan_restore_at`] to lift the override.
    pub fn wan_degrade_at(
        &mut self,
        at: SimTime,
        a: &[NodeId],
        b: &[NodeId],
        profile: LinkProfile,
    ) -> &mut Self {
        self.link_overrides
            .push((at, a.to_vec(), b.to_vec(), Some(profile)));
        self
    }

    /// Removes the link overrides between `a` and `b` at `at`, restoring
    /// topology/default routing for those pairs.
    pub fn wan_restore_at(&mut self, at: SimTime, a: &[NodeId], b: &[NodeId]) -> &mut Self {
        self.link_overrides.push((at, a.to_vec(), b.to_vec(), None));
        self
    }

    /// Starts a client on `node` watching `movie` at time `at`.
    pub fn client(&mut self, id: ClientId, node: NodeId, movie: MovieId, at: SimTime) -> &mut Self {
        self.clients.push(ClientSetup {
            id,
            node,
            movie,
            at,
            max_fps: None,
            start_at: FrameNo::ZERO,
        });
        self
    }

    /// Starts a quality-capped client (paper §4.3).
    pub fn client_with_cap(
        &mut self,
        id: ClientId,
        node: NodeId,
        movie: MovieId,
        at: SimTime,
        max_fps: u32,
    ) -> &mut Self {
        self.clients.push(ClientSetup {
            id,
            node,
            movie,
            at,
            max_fps: Some(max_fps),
            start_at: FrameNo::ZERO,
        });
        self
    }

    /// Schedules a VCR operation on a running client.
    pub fn vcr_at(&mut self, at: SimTime, client: ClientId, op: VcrOp) -> &mut Self {
        self.script.push((at, Scripted::Vcr { client, op }));
        self
    }

    /// Builds the runnable simulation.
    ///
    /// # Panics
    ///
    /// Panics if a client references an unknown movie.
    pub fn build(&self) -> VodSim {
        let mut sim: Simulation<VodWire> = Simulation::new(self.seed);
        sim.set_default_profile(self.profile.clone());
        if let Some(topo) = &self.topology {
            sim.set_topology(topo.clone());
        }
        let trace = match self.event_capacity {
            Some(capacity) => TraceHandle::recording(capacity),
            None => TraceHandle::disabled(),
        };
        if trace.is_enabled() {
            let handle = trace.clone();
            sim.set_tracer(move |event| handle.emit(|| VodEvent::from_net(event)));
        }
        let profile = match self.profile_capacity {
            Some(0) => ProfileHandle::enabled(),
            Some(capacity) => ProfileHandle::with_flamechart(capacity),
            None => ProfileHandle::disabled(),
        };
        if profile.is_enabled() {
            sim.enable_profiling();
        }
        let universe: Vec<NodeId> = self.server_universe.iter().copied().collect();
        let replicas_for = |node: NodeId| -> Vec<Replica> {
            self.movies
                .values()
                .filter(|(_, holders)| holders.contains(&node))
                .map(|(movie, holders)| Replica {
                    movie: Arc::clone(movie),
                    holders: holders.clone(),
                })
                .collect()
        };
        // Every server gets the full catalog (the paper's shared disk
        // farm): dynamic replication may ask any of them to bring up any
        // movie, not just the ones they were seeded with.
        let catalog: Vec<Arc<media::Movie>> = self
            .movies
            .values()
            .map(|(movie, _)| Arc::clone(movie))
            .collect();
        for &node in &self.initial_servers {
            sim.add_node(
                node,
                VodServer::new(self.cfg.clone(), node, universe.clone(), replicas_for(node))
                    .with_catalog(catalog.iter().cloned())
                    .with_trace(trace.clone())
                    .with_profile(profile.clone()),
            );
        }
        for &(at, node) in &self.late_servers {
            sim.start_node_at(
                at,
                node,
                VodServer::new(self.cfg.clone(), node, universe.clone(), replicas_for(node))
                    .with_catalog(catalog.iter().cloned())
                    .with_trace(trace.clone())
                    .with_profile(profile.clone()),
            );
        }
        for &(at, node) in &self.crashes {
            sim.crash_at(at, node);
        }
        for &(at, node) in &self.restarts {
            sim.restart_at(
                at,
                node,
                VodServer::new(self.cfg.clone(), node, universe.clone(), replicas_for(node))
                    .with_catalog(catalog.iter().cloned())
                    .with_trace(trace.clone())
                    .with_profile(profile.clone())
                    .with_rejoin(),
            );
        }
        for (at, a, b) in &self.partitions {
            sim.partition_at(*at, a, b);
        }
        for &at in &self.heals {
            sim.heal_all_at(at);
        }
        for (at, a, b) in &self.pair_heals {
            sim.heal_at(*at, a, b);
        }
        for (at, profile) in &self.profile_changes {
            sim.set_default_profile_at(*at, profile.clone());
        }
        for (at, a, b, profile) in &self.link_overrides {
            sim.set_link_overrides_at(*at, a, b, profile.clone());
        }
        if let Some(multidc) = &self.cfg.multidc {
            let map = &multidc.map;
            for site in 0..map.site_count() {
                let name = map.site_name(site).unwrap_or_default().to_string();
                let servers = map.servers(site).unwrap_or_default().to_vec();
                let clients = map.client_nodes(site).unwrap_or_default().to_vec();
                trace.emit(|| VodEvent::SiteDefined {
                    at: SimTime::ZERO,
                    site: site as u32,
                    name,
                    servers,
                    clients,
                });
            }
        }
        let mut client_nodes = BTreeMap::new();
        for setup in &self.clients {
            let (movie, _) = self
                .movies
                .get(&setup.movie)
                .unwrap_or_else(|| panic!("client references unknown movie {}", setup.movie));
            let mut request = WatchRequest::full_quality(movie);
            if let Some(cap) = setup.max_fps {
                request.max_fps = cap;
            }
            request.start_at = setup.start_at;
            sim.start_node_at(
                setup.at,
                setup.node,
                VodClient::new(
                    self.cfg.clone(),
                    setup.id,
                    setup.node,
                    universe.clone(),
                    request,
                )
                .with_trace(trace.clone())
                .with_profile(profile.clone())
                .with_retry_seed(self.seed),
            );
            client_nodes.insert(setup.id, setup.node);
        }
        let mut script = self.script.clone();
        for &(at, node) in &self.shutdowns {
            script.push((at, Scripted::Shutdown { node }));
        }
        script.sort_by_key(|(at, _)| *at);
        VodSim {
            sim,
            client_nodes,
            server_nodes: universe,
            script,
            next_script: 0,
            trace,
            profile,
        }
    }
}

/// A built, runnable VoD deployment.
pub struct VodSim {
    sim: Simulation<VodWire>,
    client_nodes: BTreeMap<ClientId, NodeId>,
    server_nodes: Vec<NodeId>,
    script: Vec<(SimTime, Scripted)>,
    next_script: usize,
    trace: TraceHandle,
    profile: ProfileHandle,
}

impl std::fmt::Debug for VodSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VodSim")
            .field("now", &self.sim.now())
            .field("clients", &self.client_nodes.len())
            .field("servers", &self.server_nodes.len())
            .finish()
    }
}

impl VodSim {
    /// Runs the simulation (and the scenario script) up to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while self.next_script < self.script.len() && self.script[self.next_script].0 <= until {
            let (at, action) = self.script[self.next_script].clone();
            self.next_script += 1;
            self.sim.run_until(at);
            match action {
                Scripted::Vcr { client, op } => self.apply_vcr(client, op),
                Scripted::Shutdown { node } => {
                    self.sim
                        .invoke(node, |s: &mut VodServer, ctx| s.shutdown(ctx));
                }
            }
        }
        self.sim.run_until(until);
    }

    fn apply_vcr(&mut self, client: ClientId, op: VcrOp) {
        let Some(&node) = self.client_nodes.get(&client) else {
            return;
        };
        self.sim.invoke(node, |c: &mut VodClient, ctx| match op {
            VcrOp::Pause => c.pause(ctx),
            VcrOp::Resume => c.resume(ctx),
            VcrOp::Seek(position) => c.seek(ctx, position),
            VcrOp::SetQuality(fps) => c.set_quality(ctx, fps),
            VcrOp::SetSpeed(percent) => c.set_speed(ctx, percent),
            VcrOp::Stop => c.stop(ctx),
        });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The statistics of `client`, cloned out of the simulation.
    pub fn client_stats(&self, client: ClientId) -> Option<ClientStats> {
        let node = self.client_nodes.get(&client)?;
        self.sim
            .with_process(*node, |c: &VodClient| c.stats().clone())
    }

    /// Frames displayed so far by `client`.
    pub fn client_displayed(&self, client: ClientId) -> Option<u64> {
        let node = self.client_nodes.get(&client)?;
        self.sim.with_process(*node, |c: &VodClient| c.displayed())
    }

    /// The statistics of the server on `node`.
    pub fn server_stats(&self, node: NodeId) -> Option<ServerStats> {
        self.sim
            .with_process(node, |s: &VodServer| s.stats().clone())
    }

    /// Movies the server on `node` currently replicates, in id order.
    pub fn server_movies(&self, node: NodeId) -> Option<Vec<MovieId>> {
        self.sim.with_process(node, |s: &VodServer| s.movies_held())
    }

    /// Movies whose prefix the server on `node` currently caches (always
    /// empty unless the config enables the prefix-cache tier).
    pub fn server_prefixes(&self, node: NodeId) -> Option<Vec<MovieId>> {
        self.sim
            .with_process(node, |s: &VodServer| s.prefixes_cached())
    }

    /// The node of the server currently transmitting to `client`, if any.
    pub fn owner_of(&self, client: ClientId) -> Option<NodeId> {
        self.server_nodes
            .iter()
            .copied()
            .filter(|&n| self.sim.is_alive(n))
            .find(|&n| {
                self.sim
                    .with_process(n, |s: &VodServer| s.clients_owned().contains(&client))
                    .unwrap_or(false)
            })
    }

    /// Network traffic counters.
    pub fn net_stats(&self) -> &simnet::NetStats {
        self.sim.stats()
    }

    /// Whether the server on `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.sim.is_alive(node)
    }

    /// The trace handle of this run (disabled unless the builder opted in
    /// via [`ScenarioBuilder::record_events`]).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The recorded events as JSON Lines; `None` without event recording.
    pub fn events_jsonl(&self) -> Option<String> {
        self.trace.to_jsonl()
    }

    /// Derives a [`RunReport`] from the recorded events; `None` without
    /// event recording.
    pub fn report(&self) -> Option<RunReport> {
        self.trace.report()
    }

    /// The profile handle of this run (disabled unless the builder opted
    /// in via [`ScenarioBuilder::profile_costs`]).
    pub fn profile(&self) -> &ProfileHandle {
        &self.profile
    }

    /// Merges scheduler counters, subsystem spans and network totals into
    /// a [`ProfileReport`]; `None` without cost profiling.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        if !self.profile.is_enabled() {
            return None;
        }
        Some(ProfileReport::collect(
            self.sim.profile(),
            &self.profile,
            Some(self.sim.stats()),
        ))
    }

    /// Escape hatch for tests: the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<VodWire> {
        &mut self.sim
    }
}

/// Ready-made builders for the paper's measurement scenarios.
pub mod presets {
    use std::time::Duration;

    use media::{Movie, MovieId, MovieSpec};
    use simnet::{LinkProfile, SimTime};

    use super::ScenarioBuilder;
    use crate::protocol::ClientId;

    /// Node ids used by the preset scenarios.
    pub mod nodes {
        use simnet::NodeId;

        /// First initial server.
        pub const S1: NodeId = NodeId(1);
        /// Second initial server (serves the client first: the assignment
        /// rule prefers the highest-id among equally loaded replicas).
        pub const S2: NodeId = NodeId(2);
        /// The server brought up mid-run for load balancing.
        pub const S3: NodeId = NodeId(3);
        /// The client's host.
        pub const CLIENT: NodeId = NodeId(100);
    }

    /// The movie id used by the presets.
    pub const MOVIE: MovieId = MovieId(1);

    /// The client id used by the presets.
    pub const CLIENT_ID: ClientId = ClientId(1);

    /// When the preset client starts watching (the service gets two
    /// seconds to form its groups first).
    pub const CLIENT_START: SimTime = SimTime::from_secs(2);

    /// Builds the paper's LAN scenario (§6.1, Figure 4):
    /// two replicas, the serving one crashes ~38 s into the movie, and a
    /// third server is brought up ~24 s later, pulling the client over for
    /// load balancing. Returns the builder plus the two event times
    /// (crash, load-balance) in scenario seconds.
    pub fn fig4_lan(seed: u64) -> (ScenarioBuilder, SimTime, SimTime) {
        let crash_at = CLIENT_START + Duration::from_secs(38);
        let balance_at = crash_at + Duration::from_secs(24);
        let spec = MovieSpec::paper_default().with_duration(Duration::from_secs(150));
        let mut builder = ScenarioBuilder::new(seed);
        builder
            .network(LinkProfile::lan())
            .movie(
                Movie::generate(MOVIE, &spec),
                &[nodes::S1, nodes::S2, nodes::S3],
            )
            .server(nodes::S1)
            .server(nodes::S2)
            .client(CLIENT_ID, nodes::CLIENT, MOVIE, CLIENT_START)
            // S2 serves the client (highest id of the two initial
            // replicas); kill it mid-movie.
            .crash_at(crash_at, nodes::S2)
            // Bring up S3 for load balancing; the deterministic
            // redistribution hands it the client.
            .server_at(balance_at, nodes::S3);
        (builder, crash_at, balance_at)
    }

    /// Builds the paper's WAN scenario (§6.2, Figure 5): same deployment
    /// over a 7-hop Internet path; a new server is brought up ~25 s in
    /// (load balance) and the transmitting server is terminated ~22 s
    /// later. Returns the builder plus (load-balance, crash) times.
    pub fn fig5_wan(seed: u64) -> (ScenarioBuilder, SimTime, SimTime) {
        let balance_at = CLIENT_START + Duration::from_secs(25);
        let crash_at = balance_at + Duration::from_secs(22);
        let spec = MovieSpec::paper_default().with_duration(Duration::from_secs(150));
        let mut builder = ScenarioBuilder::new(seed);
        builder
            .network(LinkProfile::wan())
            .movie(
                Movie::generate(MOVIE, &spec),
                &[nodes::S1, nodes::S2, nodes::S3],
            )
            .server(nodes::S1)
            .server(nodes::S2)
            .client(CLIENT_ID, nodes::CLIENT, MOVIE, CLIENT_START)
            .server_at(balance_at, nodes::S3)
            // After the load balance S3 owns the client; terminate it.
            .crash_at(crash_at, nodes::S3);
        (builder, balance_at, crash_at)
    }
}

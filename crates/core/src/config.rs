//! Service configuration: buffer sizes, water marks, flow-control
//! frequencies, emergency parameters and synchronization intervals.
//!
//! Defaults reproduce the paper's §6 operating point: a 37-frame software
//! buffer, a 240 KB hardware buffer (~1.2 s of a 1.4 Mbps stream), low/high
//! water marks at 73 %/88 %, critical thresholds at 15 %/30 %, flow control
//! every 8 received frames (doubled when urgent), emergency quantities
//! 12/6 decaying by 0.8 per second, and server state synchronization every
//! half second.

use std::time::Duration;

use gcs::GcsConfig;
use simnet::NodeId;

use crate::forecast::PolicyKind;

/// What a server does when another replica's clients lose their server.
///
/// `Full` is the paper's protocol (any replica takes over; a movie
/// replicated `k` times tolerates `k − 1` failures). The other two exist as
/// baselines for the fault-tolerance comparison of §7: `SingleBackup`
/// mimics a Tiger-style system that survives only one failure, `None` a
/// classical single-server deployment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TakeoverPolicy {
    /// Every surviving replica participates in redistribution (the paper).
    #[default]
    Full,
    /// Only the first failure is covered: after one takeover the replicas
    /// stop volunteering (Tiger-like baseline, §7).
    SingleBackup,
    /// No takeover at all (single-server baseline).
    None,
}

/// How a server picks the resume offset when acquiring a client.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ResumePolicy {
    /// Resume from the last synchronized offset: frames the old server
    /// already sent may be transmitted twice, but none are missed — the
    /// paper's choice ("we take a conservative (pessimistic) approach,
    /// preferring duplicate transmission of frames over missed frames").
    #[default]
    Conservative,
    /// Skip ahead by the estimated progress since the last sync: fewer
    /// duplicates, but any underestimate becomes a hole in the stream.
    SkipAhead,
}

/// Policy of the demand-driven replica manager (DESIGN.md §5d).
///
/// Servers share per-movie demand over the server group at every sync
/// tick; when a movie's sessions-per-replica stays above the hot
/// threshold for `hysteresis_ticks` consecutive ticks, the least-loaded
/// non-holder joins the movie group (bring-up); when the demand would fit
/// comfortably on one fewer replica for just as long, the highest-id
/// member of the movie group's view-synchronous view leaves it
/// gracefully (retire — elected over the agreed view, not the
/// eventually-consistent demand maps, so concurrent retires cannot
/// cascade a movie's holders below `min_replicas`). `cooldown_ticks`
/// suppresses further changes to a movie right after its replica set
/// moved, letting the redistribution settle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Bring up a replica when sessions (plus waiting clients) per
    /// replica exceed this.
    pub hot_sessions_per_replica: u32,
    /// Retire a replica when the demand fits under this per remaining
    /// replica (and nobody is waiting).
    pub cold_sessions_per_replica: u32,
    /// Consecutive sync ticks a hot/cold signal must persist.
    pub hysteresis_ticks: u32,
    /// Floor on replicas per movie.
    pub min_replicas: u32,
    /// Cap on replicas per movie.
    pub max_replicas: u32,
    /// Sync ticks to wait after a movie's replica set changed before
    /// acting on that movie again.
    pub cooldown_ticks: u32,
    /// How long bringing up a replica takes: the elected server copies
    /// the movie onto its disk farm for this long before it can join the
    /// movie group and serve (zero = the copy is instantaneous, the
    /// pre-flash-crowd modeling). This is the latency the prefix-cache
    /// tier exists to hide.
    pub bringup_delay: Duration,
}

impl ReplicationConfig {
    /// Conservative defaults: act after 2 consecutive ticks (1 s of the
    /// paper's half-second sync), cool down for 4, keep at least one and
    /// at most eight copies.
    pub fn paper_default() -> Self {
        ReplicationConfig {
            hot_sessions_per_replica: 8,
            cold_sessions_per_replica: 2,
            hysteresis_ticks: 2,
            min_replicas: 1,
            max_replicas: 8,
            cooldown_ticks: 4,
            bringup_delay: Duration::ZERO,
        }
    }

    /// Sets the replica bring-up (content copy) delay.
    #[must_use]
    pub fn with_bringup_delay(mut self, delay: Duration) -> Self {
        self.bringup_delay = delay;
        self
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig::paper_default()
    }
}

/// The prefix-cache tier (DESIGN.md §5h): servers keep the first
/// `prefix` seconds of up to `budget` movies they do *not* replicate,
/// chosen by popularity forecast (hottest first, coldest evicted), and
/// serve waiting clients those prefixes while a predicted replica is
/// still coming up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// How much of the start of each cached movie a server holds.
    pub prefix: Duration,
    /// Maximum number of movies a server caches prefixes for.
    pub budget: u32,
}

impl PrefixCacheConfig {
    /// Defaults: a 10-second prefix (twenty sync ticks of bring-up
    /// headroom) for up to four movies per server.
    pub fn paper_default() -> Self {
        PrefixCacheConfig {
            prefix: Duration::from_secs(10),
            budget: 4,
        }
    }
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        PrefixCacheConfig::paper_default()
    }
}

/// One site (datacenter) of a [`SiteMap`]: a name, the server nodes it
/// hosts and the client nodes homed to it.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SiteEntry {
    name: String,
    servers: Vec<NodeId>,
    clients: Vec<NodeId>,
}

/// The deployment's site layout, shared by every server and the scenario
/// builder so geo-affine routing decisions agree everywhere.
///
/// Unlike [`simnet::SiteTopology`] (which shapes link latency), the
/// `SiteMap` is *application* knowledge: which servers form each
/// datacenter and which clients call it home.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SiteMap {
    sites: Vec<SiteEntry>,
}

impl SiteMap {
    /// An empty map.
    pub fn new() -> Self {
        SiteMap::default()
    }

    /// Adds a named site hosting `servers`; returns its index.
    pub fn add_site(&mut self, name: &str, servers: &[NodeId]) -> usize {
        self.sites.push(SiteEntry {
            name: name.to_string(),
            servers: servers.to_vec(),
            clients: Vec::new(),
        });
        self.sites.len() - 1
    }

    /// Homes `client_nodes` to site `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn home_clients(&mut self, site: usize, client_nodes: &[NodeId]) {
        assert!(site < self.sites.len(), "no such site {site}");
        self.sites[site].clients.extend_from_slice(client_nodes);
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Name of site `site`, or `None` when out of range.
    pub fn site_name(&self, site: usize) -> Option<&str> {
        self.sites.get(site).map(|s| s.name.as_str())
    }

    /// Server nodes of site `site`, or `None` when out of range.
    pub fn servers(&self, site: usize) -> Option<&[NodeId]> {
        self.sites.get(site).map(|s| s.servers.as_slice())
    }

    /// Client nodes homed to site `site`, or `None` when out of range.
    pub fn client_nodes(&self, site: usize) -> Option<&[NodeId]> {
        self.sites.get(site).map(|s| s.clients.as_slice())
    }

    /// The site hosting server `node`, or `None` for unknown servers.
    pub fn site_of_server(&self, node: NodeId) -> Option<usize> {
        self.sites.iter().position(|s| s.servers.contains(&node))
    }

    /// The home site of the client running on `node`, or `None` for
    /// unknown clients.
    pub fn home_site_of_client(&self, node: NodeId) -> Option<usize> {
        self.sites.iter().position(|s| s.clients.contains(&node))
    }
}

/// What a coordinator does for a client whose home site has no reachable
/// server.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailoverMode {
    /// Geo-affinity is absolute: park the client unserved until its home
    /// site comes back (the no-failover baseline).
    HomeOnly,
    /// Rescue on a remote site, but only within each server's normal
    /// admission cap — overflow clients stay parked.
    Remote,
    /// Rescue on a remote site, and when the caps are exhausted keep
    /// admitting at reduced quality using the shed headroom (the paper's
    /// §5 quality adaptation applied to cross-DC failover).
    #[default]
    RemoteDegraded,
}

impl FailoverMode {
    /// Stable lower-kebab-case name for CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            FailoverMode::HomeOnly => "home-only",
            FailoverMode::Remote => "remote",
            FailoverMode::RemoteDegraded => "remote-degraded",
        }
    }
}

/// Multi-datacenter failover configuration (DESIGN.md §5i).
///
/// With this enabled, coordinators route each client to a server in its
/// home site while one is reachable, fail over to remote sites per
/// [`FailoverMode`] when the home site drops out of the movie-group view,
/// and re-home clients on the next redistribution after the site heals.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiDcConfig {
    /// The deployment's site layout.
    pub map: SiteMap,
    /// What to do when a client's home site is unreachable.
    pub mode: FailoverMode,
    /// Transmission rate of degraded rescue sessions, frames per second.
    pub degraded_fps: u32,
    /// Extra degraded sessions each server accepts beyond its normal
    /// admission cap during a rescue (admission shedding headroom).
    pub shed_headroom: u32,
}

impl MultiDcConfig {
    /// Defaults for a given site map: full remote-degraded failover,
    /// rescue sessions at half the default 30 fps, and 4 shed slots per
    /// server.
    pub fn new(map: SiteMap) -> Self {
        MultiDcConfig {
            map,
            mode: FailoverMode::RemoteDegraded,
            degraded_fps: 15,
            shed_headroom: 4,
        }
    }

    /// Returns a copy with a different failover mode.
    #[must_use]
    pub fn with_mode(mut self, mode: FailoverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy with a different degraded rate.
    #[must_use]
    pub fn with_degraded_fps(mut self, fps: u32) -> Self {
        self.degraded_fps = fps;
        self
    }

    /// Returns a copy with a different shed headroom.
    #[must_use]
    pub fn with_shed_headroom(mut self, headroom: u32) -> Self {
        self.shed_headroom = headroom;
        self
    }
}

/// Tunable parameters of the VoD service.
#[derive(Clone, Debug, PartialEq)]
pub struct VodConfig {
    /// Software (reordering) buffer capacity, in frames. Paper: 37.
    pub sw_buffer_frames: usize,
    /// Hardware decoder buffer capacity, in bytes. Paper: 240 KB.
    pub hw_buffer_bytes: u64,
    /// Low water mark as a fraction of the software buffer. Paper: 0.73.
    pub low_water_frac: f64,
    /// High water mark as a fraction of the software buffer. Paper: 0.88.
    pub high_water_frac: f64,
    /// Severe-emergency threshold (fraction of software buffer). Paper: 0.15.
    pub critical_severe_frac: f64,
    /// Mild-emergency threshold (fraction of software buffer). Paper: 0.30.
    pub critical_mild_frac: f64,
    /// Send a flow-control request every this many received frames while
    /// between the water marks. Paper: 8.
    pub flow_normal_every: u32,
    /// Send every this many received frames when outside the water marks
    /// (urgent). Paper: 4 ("the frequency is doubled").
    pub flow_urgent_every: u32,
    /// Base emergency quantity for severe emergencies (occupancy < 15 %).
    /// Paper: 12 extra frames/s, decaying to a 43-frame total.
    pub emergency_base_severe: u32,
    /// Base emergency quantity for mild emergencies (15 % ≤ occupancy
    /// < 30 %). Paper: 6.
    pub emergency_base_mild: u32,
    /// Per-second decay factor of the emergency quantity. Paper: 0.8.
    pub emergency_decay: f64,
    /// Client-side cooldown between emergency requests.
    pub emergency_cooldown: Duration,
    /// Interval of the servers' state multicast in each movie group.
    /// Paper: 0.5 s.
    pub sync_interval: Duration,
    /// Initial transmission rate for a new session, frames per second
    /// (paper §4.1: "a default transmission rate is used at startup").
    pub default_rate_fps: u32,
    /// Flow-control clamps on the base rate.
    pub min_rate_fps: u32,
    /// Upper clamp on the base rate.
    pub max_rate_fps: u32,
    /// Occupancy sampling period for the client's statistics.
    pub sample_interval: Duration,
    /// Extra timer slack modeling non-real-time OS scheduling (paper §4.2
    /// mentions process-scheduling delay); zero disables it.
    pub scheduling_jitter: Duration,
    /// Group communication tuning.
    pub gcs: GcsConfig,
    /// Takeover behaviour (baselines for the §7 comparison).
    pub takeover: TakeoverPolicy,
    /// Resume-offset choice at takeover (ablation D5).
    pub resume: ResumePolicy,
    /// Whether buffer overflow discards incremental frames before I frames
    /// (the paper's policy) or simply drops the newest frame (ablation D4).
    pub overflow_prefers_incremental: bool,
    /// How long a server waits for state-exchange reports after a view
    /// change before redistributing with whatever it has.
    pub exchange_timeout: Duration,
    /// Admission control: at most this many concurrent sessions per
    /// server (`None` = unlimited). The paper's §7 cites admission control
    /// as a complementary single-server technique; with it, clients that
    /// do not fit wait (re-opening periodically) instead of degrading
    /// everyone's stream.
    pub max_sessions_per_server: Option<u32>,
    /// Demand-driven dynamic replica management (`None` = static
    /// placement, the paper's deployments).
    pub replication: Option<ReplicationConfig>,
    /// Which replica-placement policy the managers run (reactive
    /// hysteresis, forecast-driven predictive, or hybrid). Only consulted
    /// when [`replication`](Self::replication) is enabled.
    pub placement: PolicyKind,
    /// Prefix-cache tier (`None` = disabled). Requires
    /// [`replication`](Self::replication) to do anything: prefixes hide
    /// the bring-up latency of the replica manager.
    pub prefix_cache: Option<PrefixCacheConfig>,
    /// Multi-datacenter failover (`None` = single-site behaviour,
    /// byte-identical to historical runs).
    pub multidc: Option<MultiDcConfig>,
}

impl VodConfig {
    /// The paper's §6 parameters (see module docs).
    pub fn paper_default() -> Self {
        VodConfig {
            sw_buffer_frames: 37,
            hw_buffer_bytes: 240_000,
            low_water_frac: 0.73,
            high_water_frac: 0.88,
            critical_severe_frac: 0.15,
            critical_mild_frac: 0.30,
            flow_normal_every: 8,
            flow_urgent_every: 4,
            emergency_base_severe: 12,
            emergency_base_mild: 6,
            emergency_decay: 0.8,
            emergency_cooldown: Duration::from_secs(2),
            sync_interval: Duration::from_millis(500),
            default_rate_fps: 30,
            min_rate_fps: 1,
            max_rate_fps: 60,
            sample_interval: Duration::from_millis(100),
            scheduling_jitter: Duration::from_millis(2),
            gcs: GcsConfig::new(),
            takeover: TakeoverPolicy::Full,
            resume: ResumePolicy::Conservative,
            overflow_prefers_incremental: true,
            exchange_timeout: Duration::from_millis(200),
            max_sessions_per_server: None,
            replication: None,
            placement: PolicyKind::Reactive,
            prefix_cache: None,
            multidc: None,
        }
    }

    /// Low water mark in frames.
    pub fn low_water_frames(&self) -> usize {
        (self.sw_buffer_frames as f64 * self.low_water_frac).round() as usize
    }

    /// High water mark in frames.
    pub fn high_water_frames(&self) -> usize {
        (self.sw_buffer_frames as f64 * self.high_water_frac).round() as usize
    }

    /// Severe-emergency threshold in frames.
    pub fn critical_severe_frames(&self) -> usize {
        (self.sw_buffer_frames as f64 * self.critical_severe_frac).round() as usize
    }

    /// Mild-emergency threshold in frames.
    pub fn critical_mild_frames(&self) -> usize {
        (self.sw_buffer_frames as f64 * self.critical_mild_frac).round() as usize
    }

    /// Total extra frames produced by an emergency with base quantity `q`,
    /// under iterated-floor decay `q ← ⌊q·f⌋` applied once per second
    /// (paper §4.1: q=12, f=0.8 sums to 43 frames).
    pub fn emergency_total_frames(&self, base: u32) -> u64 {
        let mut q = u64::from(base);
        let mut total = 0;
        while q > 0 {
            total += q;
            q = (q as f64 * self.emergency_decay).floor() as u64;
        }
        total
    }

    /// Returns a copy with a different sync interval (ablation D1).
    pub fn with_sync_interval(mut self, interval: Duration) -> Self {
        self.sync_interval = interval;
        self
    }

    /// Returns a copy with a different software buffer size, keeping the
    /// water-mark fractions (ablation D2 / T5).
    pub fn with_sw_buffer_frames(mut self, frames: usize) -> Self {
        self.sw_buffer_frames = frames;
        self
    }

    /// Returns a copy with different emergency parameters (ablation D3).
    pub fn with_emergency(mut self, base_severe: u32, base_mild: u32, decay: f64) -> Self {
        self.emergency_base_severe = base_severe;
        self.emergency_base_mild = base_mild;
        self.emergency_decay = decay;
        self
    }

    /// Returns a copy with a different takeover policy (T3 baselines).
    pub fn with_takeover(mut self, takeover: TakeoverPolicy) -> Self {
        self.takeover = takeover;
        self
    }

    /// Returns a copy with a different resume policy (ablation D5).
    pub fn with_resume(mut self, resume: ResumePolicy) -> Self {
        self.resume = resume;
        self
    }

    /// Returns a copy with the naive overflow policy (ablation D4).
    pub fn with_naive_overflow(mut self) -> Self {
        self.overflow_prefers_incremental = false;
        self
    }

    /// Returns a copy with per-server admission control.
    pub fn with_session_cap(mut self, cap: u32) -> Self {
        self.max_sessions_per_server = Some(cap);
        self
    }

    /// Returns a copy with demand-driven replica management enabled.
    pub fn with_dynamic_replication(mut self, policy: ReplicationConfig) -> Self {
        self.replication = Some(policy);
        self
    }

    /// Returns a copy with a different replica-placement policy.
    pub fn with_placement(mut self, placement: PolicyKind) -> Self {
        self.placement = placement;
        self
    }

    /// Returns a copy with the prefix-cache tier enabled.
    pub fn with_prefix_cache(mut self, prefix_cache: PrefixCacheConfig) -> Self {
        self.prefix_cache = Some(prefix_cache);
        self
    }

    /// Returns a copy with multi-datacenter failover enabled.
    pub fn with_multidc(mut self, multidc: MultiDcConfig) -> Self {
        self.multidc = Some(multidc);
        self
    }
}

impl Default for VodConfig {
    fn default() -> Self {
        VodConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_marks_match_paper() {
        let cfg = VodConfig::paper_default();
        assert_eq!(cfg.low_water_frames(), 27);
        assert_eq!(cfg.high_water_frames(), 33);
        assert_eq!(cfg.critical_severe_frames(), 6);
        assert_eq!(cfg.critical_mild_frames(), 11);
    }

    #[test]
    fn emergency_sum_reproduces_the_papers_43_frames() {
        let cfg = VodConfig::paper_default();
        // 12 + 9 + 7 + 5 + 4 + 3 + 2 + 1 = 43 (paper §4.1).
        assert_eq!(cfg.emergency_total_frames(12), 43);
        // The paper reports 15 for q=6; iterated-floor decay gives 16
        // (6 + 4 + 3 + 2 + 1) — a documented rounding discrepancy.
        assert_eq!(cfg.emergency_total_frames(6), 16);
    }

    #[test]
    fn emergency_peak_stays_under_40_percent_of_mean_bandwidth() {
        // Paper §4.1: "increase the bandwidth consumption at emergency
        // periods by no more than 40% of the mean bandwidth" for a 30 fps
        // movie.
        let cfg = VodConfig::paper_default();
        assert!(f64::from(cfg.emergency_base_severe) / 30.0 <= 0.40 + 1e-9);
    }

    #[test]
    fn builders_adjust_fields() {
        let cfg = VodConfig::paper_default()
            .with_sync_interval(Duration::from_millis(100))
            .with_sw_buffer_frames(74)
            .with_emergency(20, 10, 0.5)
            .with_takeover(TakeoverPolicy::None);
        assert_eq!(cfg.sync_interval, Duration::from_millis(100));
        assert_eq!(cfg.sw_buffer_frames, 74);
        assert_eq!(cfg.emergency_base_severe, 20);
        assert_eq!(cfg.takeover, TakeoverPolicy::None);
        assert_eq!(cfg.emergency_total_frames(20), 20 + 10 + 5 + 2 + 1);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(VodConfig::default(), VodConfig::paper_default());
    }

    #[test]
    fn placement_and_prefix_cache_are_opt_in() {
        let cfg = VodConfig::paper_default();
        assert_eq!(cfg.placement, PolicyKind::Reactive);
        assert_eq!(cfg.prefix_cache, None);
        let cfg = cfg
            .with_placement(PolicyKind::Predictive)
            .with_prefix_cache(PrefixCacheConfig::paper_default());
        assert_eq!(cfg.placement, PolicyKind::Predictive);
        let pc = cfg.prefix_cache.expect("enabled");
        assert_eq!(pc.prefix, Duration::from_secs(10));
        assert_eq!(pc.budget, 4);
    }

    #[test]
    fn multidc_is_opt_in_and_sitemap_resolves_homes() {
        let cfg = VodConfig::paper_default();
        assert_eq!(cfg.multidc, None);
        let mut map = SiteMap::new();
        let east = map.add_site("east", &[NodeId(1), NodeId(2)]);
        let west = map.add_site("west", &[NodeId(3), NodeId(4)]);
        map.home_clients(east, &[NodeId(1000)]);
        map.home_clients(west, &[NodeId(1001)]);
        assert_eq!(map.site_count(), 2);
        assert_eq!(map.site_name(east), Some("east"));
        assert_eq!(map.site_of_server(NodeId(3)), Some(west));
        assert_eq!(map.site_of_server(NodeId(9)), None);
        assert_eq!(map.home_site_of_client(NodeId(1000)), Some(east));
        assert_eq!(map.home_site_of_client(NodeId(9)), None);
        let cfg = cfg.with_multidc(
            MultiDcConfig::new(map)
                .with_mode(FailoverMode::Remote)
                .with_degraded_fps(10)
                .with_shed_headroom(2),
        );
        let mdc = cfg.multidc.expect("enabled");
        assert_eq!(mdc.mode, FailoverMode::Remote);
        assert_eq!(mdc.degraded_fps, 10);
        assert_eq!(mdc.shed_headroom, 2);
        assert_eq!(FailoverMode::default(), FailoverMode::RemoteDegraded);
        assert_eq!(FailoverMode::HomeOnly.as_str(), "home-only");
    }

    #[test]
    fn dynamic_replication_is_opt_in() {
        let cfg = VodConfig::paper_default();
        assert_eq!(cfg.replication, None);
        let cfg = cfg.with_dynamic_replication(ReplicationConfig::paper_default());
        let policy = cfg.replication.expect("enabled");
        assert_eq!(policy, ReplicationConfig::default());
        assert!(policy.hot_sessions_per_replica > policy.cold_sessions_per_replica);
        assert!(policy.min_replicas >= 1);
    }
}

//! Trace-driven safety oracle: replays a recorded event stream and checks
//! the paper's safety invariants, independently of the code that produced
//! the behaviour.
//!
//! The oracle judges five core invariants:
//!
//! 1. **Exclusive service** — after a convergence window, at most one
//!    server transmits to a given client at a time (§5.2: the membership
//!    protocol hands each session to exactly one replica). Overlaps whose
//!    two servers were partitioned from each other are excused: with the
//!    network split, *both* components legitimately believe they own the
//!    client until the heal.
//! 2. **Bounded frame gaps** — the frame-number sequence a client receives
//!    may contain duplicates but never a forward jump larger than the
//!    server sync skew allows (§6.1.1: "the clients may receive duplicate
//!    frames, but no frames are skipped").
//! 3. **Replica coverage** — while a movie has active viewers, at least
//!    one live server holds it (modulo a grace window for takeovers).
//! 4. **Re-served after failure** — every client whose serving server
//!    crashed receives usable video again within a bound (§6: service
//!    continues despite failures).
//! 5. **Prefix handoff complete** — a client bridged by the prefix-cache
//!    tier must be handed off to the owning replica promptly: once a real
//!    session starts for a prefix-served client, the prefix span must
//!    close within the convergence window (no client is left streaming
//!    from a prefix source after the replica is up).
//!
//! Multi-datacenter traces (those carrying `SiteDefined` events) are
//! additionally judged on three site-aware invariants:
//!
//! 6. **Re-served after site fault** — clients served by a site when the
//!    *whole* site faults (every member crashed, or cut from every other
//!    site's servers) receive usable video again within the re-based
//!    bound. A site-level partition excuses the repair until its heal,
//!    exactly like a pairwise cut in invariant 4.
//! 7. **Geo-affinity restored** — a client homed in a faulted site that
//!    was rescued by a remote site must return to a home-site server
//!    within the bound of the fault healing (§5.2's redistribution,
//!    extended across datacenters).
//! 8. **No degraded serving while the home DC is healthy** — a
//!    reduced-quality rescue serve may only happen during (or in the
//!    wake of) a fault of the client's home site.
//!
//! Prefix serves also feed invariant 3: a live prefix source counts as
//! coverage for its movie, but only until the advertised prefix runs out
//! (`prefix_frames / rate_fps` seconds after the serve started).
//!
//! Verdicts are three-valued: a [`Verdict::Fail`] is a genuine safety
//! violation; [`Verdict::Inconclusive`] means the trace does not contain
//! enough evidence either way (e.g. the run ended mid-repair, or the
//! event ring evicted events). Only `Fail` makes [`OracleReport::pass`]
//! false.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

use media::MovieId;
use simnet::{NodeId, SimTime};

use crate::protocol::{ClientId, VcrCmd};
use crate::trace::{DiscardKind, TraceRecorder, VodEvent};

/// Tunable bounds of the oracle's invariants.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleConfig {
    /// How long two servers may *both* transmit to one client around a
    /// handoff before the overlap counts as a violation (covers the view
    /// change plus in-flight frames).
    pub convergence: Duration,
    /// Largest tolerated forward jump in the received frame sequence,
    /// in missed frames. The paper bounds the resume-offset error by the
    /// 500 ms sync interval; at 30 fps that is 15 frames — 45 gives the
    /// conservative-takeover path three sync rounds of slack.
    pub max_gap_frames: u64,
    /// How quickly a client whose server crashed must receive usable
    /// video again.
    pub reserve_bound: Duration,
    /// How long a watched movie may be without any live holder before
    /// invariant 3 fires (covers detection plus replica bring-up).
    pub coverage_grace: Duration,
}

impl OracleConfig {
    /// Bounds matched to the paper's operating point (500 ms sync, 30 fps,
    /// crash detection within seconds).
    pub fn paper_default() -> Self {
        OracleConfig {
            convergence: Duration::from_secs(2),
            max_gap_frames: 45,
            reserve_bound: Duration::from_secs(10),
            coverage_grace: Duration::from_secs(15),
        }
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig::paper_default()
    }
}

/// Outcome of one invariant check.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// The invariant held throughout the trace.
    Pass,
    /// The invariant was violated; the detail names the first witness.
    Fail(String),
    /// The trace lacks the evidence to judge (truncated run, evicted
    /// events). Not counted as a failure.
    Inconclusive(String),
}

impl Verdict {
    /// Whether this verdict is a genuine violation.
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass"),
            Verdict::Fail(detail) => write!(f, "FAIL: {detail}"),
            Verdict::Inconclusive(detail) => write!(f, "inconclusive: {detail}"),
        }
    }
}

/// Per-invariant verdicts of one oracle pass.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleReport {
    /// Invariant 1: at most one server per client (post-convergence).
    pub exclusive_service: Verdict,
    /// Invariant 2: no over-large forward jump in received frames.
    pub bounded_gaps: Verdict,
    /// Invariant 3: live replica coverage while a movie has viewers.
    pub replica_coverage: Verdict,
    /// Invariant 4: faulted clients re-served within the bound.
    pub reserved_after_fault: Verdict,
    /// Invariant 5: prefix-served clients handed off to the owning
    /// replica within the convergence window of their session start.
    /// Vacuously `Pass` when the trace has no prefix events.
    pub prefix_handoff: Verdict,
    /// Invariant 6: clients served by a site at the moment the whole site
    /// faults (site partition or correlated site crash) receive usable
    /// video again within the re-based bound — the site-level partition
    /// itself excuses the repair until its heal, like any other cut.
    /// Vacuously `Pass` when the trace defines no sites.
    pub reserved_after_site_fault: Verdict,
    /// Invariant 7: after a site fault heals, clients homed in the site
    /// that were rescued by a remote site return to a home-site server
    /// within the re-based bound (geo-affinity is restored, §5.2's
    /// redistribution extended across datacenters).
    pub geo_affinity_restored: Verdict,
    /// Invariant 8: a degraded (reduced-quality) rescue serve may happen
    /// only while the client's home site is actually faulted — never
    /// while the home datacenter is healthy.
    pub degraded_only_when_home_down: Verdict,
}

impl OracleReport {
    /// Whether no invariant failed (inconclusive verdicts count as pass).
    pub fn pass(&self) -> bool {
        !self.verdicts().iter().any(|(_, v)| v.is_fail())
    }

    /// The verdicts with their stable display names, in report order.
    pub fn verdicts(&self) -> [(&'static str, &Verdict); 8] {
        [
            ("exclusive-service", &self.exclusive_service),
            ("bounded-gaps", &self.bounded_gaps),
            ("replica-coverage", &self.replica_coverage),
            ("re-served-after-fault", &self.reserved_after_fault),
            ("prefix-handoff-complete", &self.prefix_handoff),
            (
                "re-served-after-site-fault",
                &self.reserved_after_site_fault,
            ),
            ("geo-affinity-restored", &self.geo_affinity_restored),
            (
                "no-degraded-while-home-healthy",
                &self.degraded_only_when_home_down,
            ),
        ]
    }

    /// Replays `recorder`'s event stream and judges every invariant.
    pub fn check(recorder: &TraceRecorder, cfg: &OracleConfig) -> Self {
        if recorder.dropped() > 0 {
            let detail = format!(
                "trace ring evicted {} event(s); verdicts would be unsound",
                recorder.dropped()
            );
            return OracleReport {
                exclusive_service: Verdict::Inconclusive(detail.clone()),
                bounded_gaps: Verdict::Inconclusive(detail.clone()),
                replica_coverage: Verdict::Inconclusive(detail.clone()),
                reserved_after_fault: Verdict::Inconclusive(detail.clone()),
                prefix_handoff: Verdict::Inconclusive(detail.clone()),
                reserved_after_site_fault: Verdict::Inconclusive(detail.clone()),
                geo_affinity_restored: Verdict::Inconclusive(detail.clone()),
                degraded_only_when_home_down: Verdict::Inconclusive(detail),
            };
        }
        let trace_end = recorder
            .events()
            .map(VodEvent::at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let scan = Scan::run(recorder, trace_end);
        OracleReport {
            exclusive_service: scan.check_exclusive_service(cfg),
            bounded_gaps: scan.check_bounded_gaps(cfg),
            replica_coverage: scan.check_replica_coverage(cfg),
            reserved_after_fault: scan.check_reserved_after_fault(cfg, trace_end),
            prefix_handoff: scan.check_prefix_handoff(cfg, trace_end),
            reserved_after_site_fault: scan.check_reserved_after_site_fault(cfg, trace_end),
            geo_affinity_restored: scan.check_geo_affinity_restored(cfg, trace_end),
            degraded_only_when_home_down: scan.check_degraded_only_when_home_down(cfg),
        }
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.pass() { "PASS" } else { "FAIL" };
        writeln!(f, "  oracle: {verdict}")?;
        for (name, v) in self.verdicts() {
            writeln!(f, "    {name}: {v}")?;
        }
        Ok(())
    }
}

/// One closed transmission interval: `server` transmitted to the client
/// over `[start, end)`.
#[derive(Clone, Copy, Debug)]
struct ServeSpan {
    server: NodeId,
    start: SimTime,
    end: SimTime,
}

/// One prefix-serve interval: `server` bridged the client with cached
/// prefix frames from `start` until the handoff (or the source's crash).
#[derive(Clone, Copy, Debug)]
struct PrefixSpan {
    client: ClientId,
    server: NodeId,
    start: SimTime,
    /// `None` while still open at the end of the trace.
    end: Option<SimTime>,
}

/// Everything one linear pass over the trace extracts for the checks.
#[derive(Debug, Default)]
struct Scan {
    /// Per-client transmission intervals (closed against crashes, stops
    /// and the end of the trace).
    spans: BTreeMap<ClientId, Vec<ServeSpan>>,
    /// Cuts between unordered server pairs: `(a, b) -> [[from, to)]`.
    cuts: BTreeMap<(NodeId, NodeId), Vec<(SimTime, SimTime)>>,
    /// Frame-sequence jumps observed at clients.
    gaps: Vec<(SimTime, ClientId, u64)>,
    /// Crash events.
    crashes: Vec<(SimTime, NodeId)>,
    /// Where each client's video frames land (from `SessionStarted`).
    client_nodes: BTreeMap<ClientId, NodeId>,
    /// Video datagram arrival times per destination node.
    video_arrivals: BTreeMap<NodeId, Vec<SimTime>>,
    /// Late-discard times per client.
    late_discards: BTreeMap<ClientId, Vec<SimTime>>,
    /// When each client's session was over for good (server-side end,
    /// client stop, or end of movie) — excuses for invariant 4.
    session_over: BTreeMap<ClientId, SimTime>,
    /// Clients whose own actions ended the session (VCR stop, end of
    /// movie). Unlike a server-side end, this is ground truth of intent:
    /// a later `SessionStarted` against it is a stale-record
    /// resurrection by a replica that missed the removal, not renewed
    /// demand, and must not re-arm invariant 4.
    stopped_for_good: BTreeSet<ClientId>,
    /// Windows during which some watched movie had no live holder:
    /// `(movie, from, to)`.
    uncovered: Vec<(MovieId, SimTime, SimTime)>,
    /// Prefix-serve intervals (closed by handoff or source crash; left
    /// `end: None` when the trace ends with the span open).
    prefix_spans: Vec<PrefixSpan>,
    /// Session start times per client, for the handoff deadline.
    session_starts: BTreeMap<ClientId, Vec<SimTime>>,
    /// Site definitions from the trace: site index → (server nodes,
    /// homed client nodes). Empty for single-datacenter traces.
    sites: BTreeMap<u32, (BTreeSet<NodeId>, BTreeSet<NodeId>)>,
    /// Closed windows during which an entire site was faulted — every
    /// member either not live or cut from all other sites' servers.
    site_faults: BTreeMap<u32, Vec<(SimTime, SimTime)>>,
    /// Degraded (reduced-quality) rescue serves: `(at, client)`.
    degraded_serves: Vec<(SimTime, ClientId)>,
}

impl Scan {
    #[allow(clippy::too_many_lines)]
    fn run(recorder: &TraceRecorder, trace_end: SimTime) -> Self {
        let mut scan = Scan::default();
        // Live state threaded through the chronological sweep.
        let mut open_spans: BTreeMap<ClientId, BTreeMap<NodeId, SimTime>> = BTreeMap::new();
        let mut open_cuts: BTreeMap<(NodeId, NodeId), SimTime> = BTreeMap::new();
        let mut live: BTreeSet<NodeId> = BTreeSet::new();
        let mut holders: BTreeMap<MovieId, BTreeSet<NodeId>> = BTreeMap::new();
        let mut viewers: BTreeMap<MovieId, BTreeSet<ClientId>> = BTreeMap::new();
        let mut client_movie: BTreeMap<ClientId, MovieId> = BTreeMap::new();
        let mut uncovered_since: BTreeMap<MovieId, SimTime> = BTreeMap::new();
        // Open prefix serves: (client, source) → index into prefix_spans,
        // plus the per-movie coverage view with each serve's expiry (the
        // instant the advertised prefix runs out at the nominal rate).
        let mut open_prefix: BTreeMap<(ClientId, NodeId), usize> = BTreeMap::new();
        let mut prefix_cover: BTreeMap<MovieId, BTreeMap<(ClientId, NodeId), SimTime>> =
            BTreeMap::new();
        // Open site-fault windows and the union of all site servers (the
        // "other sites" a faulted site must be cut from).
        let mut site_fault_since: BTreeMap<u32, SimTime> = BTreeMap::new();
        let mut all_site_servers: BTreeSet<NodeId> = BTreeSet::new();
        let pair = |a: NodeId, b: NodeId| (a.min(b), a.max(b));
        for event in recorder.events() {
            let at = event.at();
            // Only liveness and connectivity transitions can change a
            // site's fault status; skip the per-site sweep elsewhere.
            let site_relevant = matches!(
                event,
                VodEvent::NodeStarted { .. }
                    | VodEvent::NodeRestarted { .. }
                    | VodEvent::NodeCrashed { .. }
                    | VodEvent::Partitioned { .. }
                    | VodEvent::Healed { .. }
                    | VodEvent::SessionStarted { .. }
                    | VodEvent::SiteDefined { .. }
            );
            match event {
                VodEvent::NodeStarted { node, .. } | VodEvent::NodeRestarted { node, .. } => {
                    live.insert(*node);
                }
                VodEvent::NodeCrashed { node, .. } => {
                    live.remove(node);
                    // The crash terminates whatever the node was serving.
                    for (client, open) in &mut open_spans {
                        if let Some(start) = open.remove(node) {
                            scan.spans.entry(*client).or_default().push(ServeSpan {
                                server: *node,
                                start,
                                end: at,
                            });
                        }
                    }
                    // ...including any prefix bridging it was doing.
                    open_prefix.retain(|&(_, server), &mut idx| {
                        if server == *node {
                            scan.prefix_spans[idx].end = Some(at);
                            false
                        } else {
                            true
                        }
                    });
                    for sources in prefix_cover.values_mut() {
                        sources.retain(|&(_, server), _| server != *node);
                    }
                    scan.crashes.push((at, *node));
                }
                VodEvent::Partitioned { a, b, .. } => {
                    for &x in a {
                        for &y in b {
                            open_cuts.entry(pair(x, y)).or_insert(at);
                        }
                    }
                }
                VodEvent::Healed { a, b, .. } => {
                    let heal_all = a.is_empty() && b.is_empty();
                    let healed: Vec<(NodeId, NodeId)> = if heal_all {
                        open_cuts.keys().copied().collect()
                    } else {
                        a.iter()
                            .flat_map(|&x| b.iter().map(move |&y| pair(x, y)))
                            .collect()
                    };
                    for key in healed {
                        if let Some(from) = open_cuts.remove(&key) {
                            scan.cuts.entry(key).or_default().push((from, at));
                        }
                    }
                }
                VodEvent::SessionStarted {
                    server,
                    client,
                    client_node,
                    movie,
                    ..
                } => {
                    open_spans
                        .entry(*client)
                        .or_default()
                        .entry(*server)
                        .or_insert(at);
                    // Transmitting proves the server is up, even if its
                    // boot predates the recorded window.
                    live.insert(*server);
                    scan.client_nodes.insert(*client, *client_node);
                    holders.entry(*movie).or_default().insert(*server);
                    viewers.entry(*movie).or_default().insert(*client);
                    client_movie.insert(*client, *movie);
                    scan.session_starts.entry(*client).or_default().push(at);
                    // A session (re)start supersedes an earlier server-side
                    // "over" (a wrong end corrected by a takeover) — but
                    // never the client's own stop.
                    if !scan.stopped_for_good.contains(client) {
                        scan.session_over.remove(client);
                    }
                }
                VodEvent::SessionStopped { server, client, .. } => {
                    if let Some(start) = open_spans
                        .get_mut(client)
                        .and_then(|open| open.remove(server))
                    {
                        scan.spans.entry(*client).or_default().push(ServeSpan {
                            server: *server,
                            start,
                            end: at,
                        });
                    }
                }
                VodEvent::SessionEnded { server, client, .. } => {
                    if let Some(start) = open_spans
                        .get_mut(client)
                        .and_then(|open| open.remove(server))
                    {
                        scan.spans.entry(*client).or_default().push(ServeSpan {
                            server: *server,
                            start,
                            end: at,
                        });
                    }
                    scan.session_over.entry(*client).or_insert(at);
                    if let Some(movie) = client_movie.get(client) {
                        if let Some(watching) = viewers.get_mut(movie) {
                            watching.remove(client);
                        }
                    }
                }
                VodEvent::ReplicaBringUp { server, movie, .. } => {
                    holders.entry(*movie).or_default().insert(*server);
                }
                VodEvent::ReplicaRetire { server, movie, .. } => {
                    if let Some(set) = holders.get_mut(movie) {
                        set.remove(server);
                    }
                }
                VodEvent::PrefixServe {
                    server,
                    client,
                    movie,
                    prefix_frames,
                    rate_fps,
                    ..
                } => {
                    let idx = scan.prefix_spans.len();
                    scan.prefix_spans.push(PrefixSpan {
                        client: *client,
                        server: *server,
                        start: at,
                        end: None,
                    });
                    open_prefix.insert((*client, *server), idx);
                    let runs_out = at
                        + Duration::from_micros(
                            prefix_frames * 1_000_000 / u64::from((*rate_fps).max(1)),
                        );
                    prefix_cover
                        .entry(*movie)
                        .or_default()
                        .insert((*client, *server), runs_out);
                }
                VodEvent::PrefixHandoff {
                    server,
                    client,
                    movie,
                    ..
                } => {
                    if let Some(idx) = open_prefix.remove(&(*client, *server)) {
                        scan.prefix_spans[idx].end = Some(at);
                    }
                    if let Some(sources) = prefix_cover.get_mut(movie) {
                        sources.remove(&(*client, *server));
                    }
                }
                VodEvent::FrameGap {
                    client,
                    from_frame,
                    to_frame,
                    ..
                } => {
                    let missed = to_frame.0.saturating_sub(from_frame.0).saturating_sub(1);
                    scan.gaps.push((at, *client, missed));
                }
                VodEvent::NetDelivered { to, class, .. } if *class == "video" => {
                    scan.video_arrivals.entry(to.node).or_default().push(at);
                }
                VodEvent::FrameDiscarded { client, kind, .. } => {
                    if matches!(kind, DiscardKind::Late) {
                        scan.late_discards.entry(*client).or_default().push(at);
                    }
                }
                VodEvent::VcrIssued { client, cmd, .. } => {
                    if matches!(cmd, VcrCmd::Stop) {
                        scan.session_over.entry(*client).or_insert(at);
                        scan.stopped_for_good.insert(*client);
                    }
                }
                VodEvent::MovieEnded { client, .. } => {
                    scan.session_over.entry(*client).or_insert(at);
                    scan.stopped_for_good.insert(*client);
                }
                VodEvent::SiteDefined {
                    site,
                    servers,
                    clients,
                    ..
                } => {
                    all_site_servers.extend(servers.iter().copied());
                    scan.sites.insert(
                        *site,
                        (
                            servers.iter().copied().collect(),
                            clients.iter().copied().collect(),
                        ),
                    );
                }
                VodEvent::DegradedServe { client, .. } => {
                    scan.degraded_serves.push((at, *client));
                }
                _ => {}
            }
            // Site-fault transitions: a site is faulted while every member
            // is either down or cut from every other site's servers.
            if site_relevant && !scan.sites.is_empty() {
                for (&site, (members, _)) in &scan.sites {
                    let others: Vec<NodeId> = all_site_servers
                        .iter()
                        .copied()
                        .filter(|n| !members.contains(n))
                        .collect();
                    let faulted = !members.is_empty()
                        && members.iter().all(|&m| {
                            !live.contains(&m)
                                || (!others.is_empty()
                                    && others.iter().all(|&o| open_cuts.contains_key(&pair(m, o))))
                        });
                    if faulted {
                        site_fault_since.entry(site).or_insert(at);
                    } else if let Some(from) = site_fault_since.remove(&site) {
                        // Zero-length windows (definition precedes the
                        // members' boot events at the same instant) carry
                        // no information and must not excuse anything.
                        if at > from {
                            scan.site_faults.entry(site).or_default().push((from, at));
                        }
                    }
                }
            }
            // Coverage transitions are re-evaluated after every event. A
            // live prefix source counts, but only until its advertised
            // prefix runs out.
            for (movie, watching) in &viewers {
                let covered = watching.is_empty()
                    || holders
                        .get(movie)
                        .is_some_and(|h| h.iter().any(|s| live.contains(s)))
                    || prefix_cover
                        .get(movie)
                        .is_some_and(|sources| sources.values().any(|&runs_out| at <= runs_out));
                if covered {
                    if let Some(from) = uncovered_since.remove(movie) {
                        scan.uncovered.push((*movie, from, at));
                    }
                } else {
                    uncovered_since.entry(*movie).or_insert(at);
                }
            }
        }
        for (client, open) in open_spans {
            for (server, start) in open {
                scan.spans.entry(client).or_default().push(ServeSpan {
                    server,
                    start,
                    end: trace_end,
                });
            }
        }
        for (key, from) in open_cuts {
            scan.cuts.entry(key).or_default().push((from, trace_end));
        }
        for (movie, from) in uncovered_since {
            scan.uncovered.push((movie, from, trace_end));
        }
        for (site, from) in site_fault_since {
            if trace_end > from {
                scan.site_faults
                    .entry(site)
                    .or_default()
                    .push((from, trace_end));
            }
        }
        scan
    }

    /// Whether servers `a` and `b` were partitioned from each other at any
    /// point during `[from, to)`.
    fn partitioned_during(&self, a: NodeId, b: NodeId, from: SimTime, to: SimTime) -> bool {
        let key = (a.min(b), a.max(b));
        self.cuts
            .get(&key)
            .is_some_and(|cuts| cuts.iter().any(|&(s, e)| s < to && from < e))
    }

    fn check_exclusive_service(&self, cfg: &OracleConfig) -> Verdict {
        for (client, spans) in &self.spans {
            for (i, x) in spans.iter().enumerate() {
                for y in &spans[i + 1..] {
                    if x.server == y.server {
                        continue;
                    }
                    let from = x.start.max(y.start);
                    let to = x.end.min(y.end);
                    if to.saturating_since(from) <= cfg.convergence {
                        continue;
                    }
                    if self.partitioned_during(x.server, y.server, from, to) {
                        // Both partition components legitimately serve the
                        // client until the heal reconciles them.
                        continue;
                    }
                    return Verdict::Fail(format!(
                        "{client} served by {} and {} concurrently for {}us (from {}us)",
                        x.server,
                        y.server,
                        to.saturating_since(from).as_micros(),
                        from.as_micros()
                    ));
                }
            }
        }
        Verdict::Pass
    }

    fn check_bounded_gaps(&self, cfg: &OracleConfig) -> Verdict {
        for &(at, client, missed) in &self.gaps {
            if missed <= cfg.max_gap_frames {
                continue;
            }
            if self.double_served_across_cut(client, at) {
                // Two partition components each stream their own position
                // to the client, and the interleaving can jump arbitrarily
                // even though neither stream skips a frame. The paper's
                // no-skip guarantee is per-stream until the heal
                // reconciles ownership, so such jumps are excused — the
                // same excuse exclusive service grants a split fleet.
                continue;
            }
            return Verdict::Fail(format!(
                "{client} skipped {missed} frame(s) at {}us (bound {})",
                at.as_micros(),
                cfg.max_gap_frames
            ));
        }
        Verdict::Pass
    }

    /// Whether `client` was, at instant `at`, inside two transmission
    /// spans from servers that were partitioned from each other during
    /// the spans' overlap.
    fn double_served_across_cut(&self, client: ClientId, at: SimTime) -> bool {
        let Some(spans) = self.spans.get(&client) else {
            return false;
        };
        let covering: Vec<&ServeSpan> = spans
            .iter()
            .filter(|s| s.start <= at && at < s.end)
            .collect();
        covering.iter().enumerate().any(|(i, x)| {
            covering[i + 1..].iter().any(|y| {
                x.server != y.server
                    && self.partitioned_during(
                        x.server,
                        y.server,
                        x.start.max(y.start),
                        x.end.min(y.end),
                    )
            })
        })
    }

    fn check_replica_coverage(&self, cfg: &OracleConfig) -> Verdict {
        for &(movie, from, to) in &self.uncovered {
            let span = to.saturating_since(from);
            if span > cfg.coverage_grace {
                return Verdict::Fail(format!(
                    "{movie} had viewers but no live holder for {}us from {}us (grace {}us)",
                    span.as_micros(),
                    from.as_micros(),
                    cfg.coverage_grace.as_micros()
                ));
            }
        }
        Verdict::Pass
    }

    /// The repair deadline for a crash at `crash_at`, re-based past every
    /// disruption that begins inside the *original* repair window. A
    /// compounding fault — another server crashing, or a partition cutting
    /// the fleet mid-repair — can legitimately take out the very replica
    /// that was about to take over, so each such disruption excuses the
    /// repair until it clears (a cut's heal, a crash itself) plus one
    /// bound. The deadline is the *maximum of the excuses*, not a chain:
    /// the old sweep re-armed eligibility from the already-extended
    /// deadline, so a partition heal and a crash landing in the same sync
    /// window double-extended the bound — each excuse stretched the window
    /// the next one had to land in, and an unrepaired client could ride a
    /// cascade of unrelated faults indefinitely.
    fn rebased_deadline(&self, crash_at: SimTime, cfg: &OracleConfig) -> SimTime {
        // Eligibility is judged against the original window only.
        let original = crash_at + cfg.reserve_bound;
        let mut deadline = original;
        for &(at, _) in &self.crashes {
            if at > crash_at && at <= original {
                deadline = deadline.max(at + cfg.reserve_bound);
            }
        }
        for cuts in self.cuts.values() {
            for &(begins, clears) in cuts {
                if clears > crash_at && begins <= original {
                    deadline = deadline.max(clears + cfg.reserve_bound);
                }
            }
        }
        deadline
    }

    fn check_reserved_after_fault(&self, cfg: &OracleConfig, trace_end: SimTime) -> Verdict {
        for &(crash_at, node) in &self.crashes {
            let deadline = self.rebased_deadline(crash_at, cfg);
            for (client, spans) in &self.spans {
                let affected = spans
                    .iter()
                    .any(|s| s.server == node && s.start < crash_at && s.end >= crash_at);
                if !affected {
                    continue;
                }
                // A session that was over anyway needs no repair.
                if self
                    .session_over
                    .get(client)
                    .is_some_and(|&over| over <= deadline)
                {
                    continue;
                }
                let served = self.usable_frames_in(*client, crash_at, deadline) > 0;
                if served {
                    continue;
                }
                if trace_end < deadline {
                    return Verdict::Inconclusive(format!(
                        "trace ends {}us before {client}'s repair deadline ({} crash at {}us)",
                        deadline.saturating_since(trace_end).as_micros(),
                        node,
                        crash_at.as_micros()
                    ));
                }
                return Verdict::Fail(format!(
                    "{client} not re-served by {}us after {} crashed at {}us \
                     (bound {}us, re-based past overlapping faults)",
                    deadline.as_micros(),
                    node,
                    crash_at.as_micros(),
                    cfg.reserve_bound.as_micros()
                ));
            }
        }
        Verdict::Pass
    }

    /// Invariant 5: once a real session starts for a prefix-served
    /// client, the prefix span must close within the convergence window
    /// — no client keeps streaming from a prefix source after the owning
    /// replica is up. Spans whose client never got a session are judged
    /// by coverage (the prefix simply runs out), not here.
    fn check_prefix_handoff(&self, cfg: &OracleConfig, trace_end: SimTime) -> Verdict {
        for span in &self.prefix_spans {
            let started = self
                .session_starts
                .get(&span.client)
                .and_then(|ts| ts.iter().find(|&&t| t >= span.start));
            let Some(&started) = started else {
                continue;
            };
            let deadline = started + cfg.convergence;
            if span.end.is_some_and(|end| end <= deadline) {
                continue;
            }
            if span.end.is_none() && trace_end < deadline {
                return Verdict::Inconclusive(format!(
                    "trace ends {}us before {}'s prefix-handoff deadline \
                     (session started at {}us)",
                    deadline.saturating_since(trace_end).as_micros(),
                    span.client,
                    started.as_micros()
                ));
            }
            let end = span.end.unwrap_or(trace_end);
            return Verdict::Fail(format!(
                "{} still on prefix source {} {}us past its handoff deadline \
                 (session started at {}us, prefix since {}us)",
                span.client,
                span.server,
                end.saturating_since(deadline).as_micros(),
                started.as_micros(),
                span.start.as_micros()
            ));
        }
        Verdict::Pass
    }

    /// Invariant 6: clients a site was serving when the whole site
    /// faulted must receive usable video again within the re-based bound.
    /// A site-level partition's cuts begin inside the original window and
    /// clear at the heal, so [`Self::rebased_deadline`] automatically
    /// stretches the deadline to heal + bound — the "site-level partition
    /// excuse". A correlated site *crash* gets no such excuse: a remote
    /// datacenter must rescue the clients within the plain bound.
    fn check_reserved_after_site_fault(&self, cfg: &OracleConfig, trace_end: SimTime) -> Verdict {
        for (site, windows) in &self.site_faults {
            let Some((servers, _)) = self.sites.get(site) else {
                continue;
            };
            for &(from, _to) in windows {
                let deadline = self.rebased_deadline(from, cfg);
                for (client, spans) in &self.spans {
                    let affected = spans
                        .iter()
                        .any(|s| servers.contains(&s.server) && s.start < from && s.end >= from);
                    if !affected {
                        continue;
                    }
                    if self
                        .session_over
                        .get(client)
                        .is_some_and(|&over| over <= deadline)
                    {
                        continue;
                    }
                    if self.usable_frames_in(*client, from, deadline) > 0 {
                        continue;
                    }
                    if trace_end < deadline {
                        return Verdict::Inconclusive(format!(
                            "trace ends {}us before {client}'s rescue deadline \
                             (site {site} faulted at {}us)",
                            deadline.saturating_since(trace_end).as_micros(),
                            from.as_micros()
                        ));
                    }
                    return Verdict::Fail(format!(
                        "{client} not re-served by {}us after site {site} faulted at {}us \
                         (bound {}us, re-based past overlapping faults)",
                        deadline.as_micros(),
                        from.as_micros(),
                        cfg.reserve_bound.as_micros()
                    ));
                }
            }
        }
        Verdict::Pass
    }

    /// Invariant 7: a client homed in a faulted site that was riding a
    /// remote rescue when the fault healed must be back on a home-site
    /// server within the re-based bound of the heal.
    fn check_geo_affinity_restored(&self, cfg: &OracleConfig, trace_end: SimTime) -> Verdict {
        for (site, windows) in &self.site_faults {
            let Some((servers, homed_nodes)) = self.sites.get(site) else {
                continue;
            };
            for &(_from, to) in windows {
                if to >= trace_end {
                    // The fault never healed inside the trace; there is
                    // nothing to restore yet.
                    continue;
                }
                let deadline = self.rebased_deadline(to, cfg);
                for (client, spans) in &self.spans {
                    let homed = self
                        .client_nodes
                        .get(client)
                        .is_some_and(|node| homed_nodes.contains(node));
                    if !homed {
                        continue;
                    }
                    let remote_at_heal = spans
                        .iter()
                        .any(|s| !servers.contains(&s.server) && s.start <= to && s.end > to);
                    if !remote_at_heal {
                        continue;
                    }
                    if self
                        .session_over
                        .get(client)
                        .is_some_and(|&over| over <= deadline)
                    {
                        continue;
                    }
                    let returned = spans
                        .iter()
                        .any(|s| servers.contains(&s.server) && s.start <= deadline && s.end > to);
                    if returned {
                        continue;
                    }
                    if trace_end < deadline {
                        return Verdict::Inconclusive(format!(
                            "trace ends {}us before {client}'s affinity deadline \
                             (site {site} healed at {}us)",
                            deadline.saturating_since(trace_end).as_micros(),
                            to.as_micros()
                        ));
                    }
                    return Verdict::Fail(format!(
                        "{client} still served remotely {}us after its home site {site} \
                         healed at {}us (bound {}us)",
                        deadline.saturating_since(to).as_micros(),
                        to.as_micros(),
                        cfg.reserve_bound.as_micros()
                    ));
                }
            }
        }
        Verdict::Pass
    }

    /// Invariant 8: every degraded serve must fall inside a fault window
    /// of the client's home site (plus one bound of post-heal slack for
    /// sessions admitted before the views re-merge). A degraded serve for
    /// a client homed to no site, or while its home site is healthy, is a
    /// violation.
    fn check_degraded_only_when_home_down(&self, cfg: &OracleConfig) -> Verdict {
        for &(at, client) in &self.degraded_serves {
            let Some(&node) = self.client_nodes.get(&client) else {
                return Verdict::Fail(format!(
                    "{client} degraded-served at {}us before any recorded session",
                    at.as_micros()
                ));
            };
            let home = self
                .sites
                .iter()
                .find(|(_, (_, homed))| homed.contains(&node))
                .map(|(&site, _)| site);
            let Some(home) = home else {
                return Verdict::Fail(format!(
                    "{client} degraded-served at {}us but is homed to no site",
                    at.as_micros()
                ));
            };
            let excused = self.site_faults.get(&home).is_some_and(|windows| {
                windows
                    .iter()
                    .any(|&(from, to)| at >= from && at <= to + cfg.reserve_bound)
            });
            if !excused {
                return Verdict::Fail(format!(
                    "{client} degraded-served at {}us while its home site {home} was healthy",
                    at.as_micros()
                ));
            }
        }
        Verdict::Pass
    }

    /// Usable (non-late) video frames that reached `client` in `(from,
    /// to]`: arrivals at its node minus its late discards in the window.
    fn usable_frames_in(&self, client: ClientId, from: SimTime, to: SimTime) -> u64 {
        let Some(&node) = self.client_nodes.get(&client) else {
            return 0;
        };
        let arrivals = self
            .video_arrivals
            .get(&node)
            .map_or(0, |ts| ts.iter().filter(|&&t| t > from && t <= to).count());
        let late = self
            .late_discards
            .get(&client)
            .map_or(0, |ts| ts.iter().filter(|&&t| t > from && t <= to).count());
        (arrivals as u64).saturating_sub(late as u64)
    }
}

/// Renders the verdicts as one stable summary token, e.g.
/// `"PASS"` or `"FAIL[exclusive-service,re-served-after-fault]"`.
pub fn summary_token(report: &OracleReport) -> String {
    if report.pass() {
        "PASS".to_owned()
    } else {
        let failed: Vec<&str> = report
            .verdicts()
            .iter()
            .filter(|(_, v)| v.is_fail())
            .map(|(name, _)| *name)
            .collect();
        let mut out = String::from("FAIL[");
        out.push_str(&failed.join(","));
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media::FrameNo;
    use simnet::{Endpoint, Port};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn recorder(events: Vec<VodEvent>) -> TraceRecorder {
        let mut rec = TraceRecorder::new(1 << 12);
        for e in events {
            rec.push(e);
        }
        rec
    }

    fn started(at: f64, server: u32, client: u32) -> VodEvent {
        VodEvent::SessionStarted {
            at: t(at),
            server: NodeId(server),
            client: ClientId(client),
            client_node: NodeId(100 + client),
            movie: MovieId(1),
            resume_frame: FrameNo(0),
        }
    }

    fn stopped(at: f64, server: u32, client: u32) -> VodEvent {
        VodEvent::SessionStopped {
            at: t(at),
            server: NodeId(server),
            client: ClientId(client),
        }
    }

    #[test]
    fn clean_handoff_passes_all_invariants() {
        let report = OracleReport::check(
            &recorder(vec![
                VodEvent::NodeStarted {
                    at: t(0.0),
                    node: NodeId(1),
                },
                VodEvent::NodeStarted {
                    at: t(0.0),
                    node: NodeId(2),
                },
                started(1.0, 1, 7),
                stopped(20.0, 1, 7),
                started(20.5, 2, 7),
                VodEvent::SessionEnded {
                    at: t(40.0),
                    server: NodeId(2),
                    client: ClientId(7),
                },
            ]),
            &OracleConfig::paper_default(),
        );
        assert!(report.pass(), "{report}");
        assert_eq!(report.exclusive_service, Verdict::Pass);
    }

    #[test]
    fn long_double_service_fails_exclusivity() {
        let report = OracleReport::check(
            &recorder(vec![
                started(1.0, 1, 7),
                started(2.0, 2, 7),
                stopped(30.0, 1, 7),
                stopped(31.0, 2, 7),
            ]),
            &OracleConfig::paper_default(),
        );
        assert!(report.exclusive_service.is_fail(), "{report}");
        assert!(!report.pass());
        assert_eq!(summary_token(&report), "FAIL[exclusive-service]");
    }

    #[test]
    fn partition_excuses_double_service() {
        let report = OracleReport::check(
            &recorder(vec![
                started(1.0, 1, 7),
                VodEvent::Partitioned {
                    at: t(1.5),
                    a: vec![NodeId(1)],
                    b: vec![NodeId(2), NodeId(100 + 7)],
                },
                started(2.0, 2, 7),
                VodEvent::Healed {
                    at: t(30.0),
                    a: vec![NodeId(1)],
                    b: vec![NodeId(2), NodeId(100 + 7)],
                },
                stopped(30.1, 1, 7),
            ]),
            &OracleConfig::paper_default(),
        );
        assert_eq!(report.exclusive_service, Verdict::Pass, "{report}");
    }

    #[test]
    fn oversized_frame_jump_fails_bounded_gaps() {
        let report = OracleReport::check(
            &recorder(vec![VodEvent::FrameGap {
                at: t(5.0),
                client: ClientId(3),
                from_frame: FrameNo(100),
                to_frame: FrameNo(400),
            }]),
            &OracleConfig::paper_default(),
        );
        assert!(report.bounded_gaps.is_fail());
        // A within-bound jump passes.
        let small = OracleReport::check(
            &recorder(vec![VodEvent::FrameGap {
                at: t(5.0),
                client: ClientId(3),
                from_frame: FrameNo(100),
                to_frame: FrameNo(110),
            }]),
            &OracleConfig::paper_default(),
        );
        assert_eq!(small.bounded_gaps, Verdict::Pass);
    }

    #[test]
    fn losing_every_holder_fails_coverage() {
        let mut events = vec![
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(1),
            },
            started(1.0, 1, 7),
            VodEvent::NodeCrashed {
                at: t(5.0),
                node: NodeId(1),
            },
        ];
        // Pad the trace far past the grace window so the uncovered span is
        // closed at a late trace end.
        events.push(VodEvent::FrameGap {
            at: t(60.0),
            client: ClientId(7),
            from_frame: FrameNo(0),
            to_frame: FrameNo(1),
        });
        let report = OracleReport::check(&recorder(events), &OracleConfig::paper_default());
        assert!(report.replica_coverage.is_fail(), "{report}");
    }

    #[test]
    fn unrepaired_crash_fails_reserved_and_truncated_trace_is_inconclusive() {
        let base = vec![
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(1),
            },
            started(1.0, 1, 7),
            VodEvent::NodeCrashed {
                at: t(5.0),
                node: NodeId(1),
            },
        ];
        // Trace ends before the deadline: inconclusive, still passes.
        let short = OracleReport::check(&recorder(base.clone()), &OracleConfig::paper_default());
        assert!(matches!(
            short.reserved_after_fault,
            Verdict::Inconclusive(_)
        ));
        assert!(short.pass());
        // Trace extends past the deadline with no delivery: fail.
        let mut long = base.clone();
        long.push(VodEvent::FrameGap {
            at: t(60.0),
            client: ClientId(7),
            from_frame: FrameNo(0),
            to_frame: FrameNo(1),
        });
        let report = OracleReport::check(&recorder(long), &OracleConfig::paper_default());
        assert!(report.reserved_after_fault.is_fail(), "{report}");
        // A timely video delivery to the client's node repairs it.
        let mut repaired = base;
        repaired.push(VodEvent::NetDelivered {
            at: t(9.0),
            sent_at: t(8.9),
            from: Endpoint::new(NodeId(2), Port(1)),
            to: Endpoint::new(NodeId(107), Port(1)),
            class: "video",
        });
        repaired.push(VodEvent::FrameGap {
            at: t(60.0),
            client: ClientId(7),
            from_frame: FrameNo(0),
            to_frame: FrameNo(1),
        });
        let report = OracleReport::check(&recorder(repaired), &OracleConfig::paper_default());
        assert_eq!(report.reserved_after_fault, Verdict::Pass, "{report}");
    }

    /// Sick trace for the deadline re-basing: a partition heal inside the
    /// original repair window excuses the repair until heal + bound, but a
    /// *later* crash landing only inside that already-extended window must
    /// NOT extend it again. The old chained sweep double-extended here and
    /// blessed a repair that arrived a full bound late.
    #[test]
    fn compounding_faults_extend_once_not_chained() {
        // Crash at 5s → original window ends at 15s (bound 10s). A cut
        // heals at 14s → excused until 24s. A second crash at 20s is
        // outside the original window; under the old chaining it stretched
        // the deadline to 30s, so the repair at 27s passed.
        let events = vec![
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(1),
            },
            started(1.0, 1, 7),
            VodEvent::NodeCrashed {
                at: t(5.0),
                node: NodeId(1),
            },
            VodEvent::Partitioned {
                at: t(6.0),
                a: vec![NodeId(2)],
                b: vec![NodeId(3)],
            },
            VodEvent::Healed {
                at: t(14.0),
                a: vec![NodeId(2)],
                b: vec![NodeId(3)],
            },
            VodEvent::NodeCrashed {
                at: t(20.0),
                node: NodeId(3),
            },
            VodEvent::NetDelivered {
                at: t(27.0),
                sent_at: t(26.9),
                from: Endpoint::new(NodeId(2), Port(1)),
                to: Endpoint::new(NodeId(107), Port(1)),
                class: "video",
            },
            VodEvent::FrameGap {
                at: t(60.0),
                client: ClientId(7),
                from_frame: FrameNo(0),
                to_frame: FrameNo(1),
            },
        ];
        let report = OracleReport::check(&recorder(events), &OracleConfig::paper_default());
        assert!(report.reserved_after_fault.is_fail(), "{report}");
        // The same trace with the repair inside the single-excuse window
        // (before 24s) passes.
        let events_ok = vec![
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(1),
            },
            started(1.0, 1, 7),
            VodEvent::NodeCrashed {
                at: t(5.0),
                node: NodeId(1),
            },
            VodEvent::Partitioned {
                at: t(6.0),
                a: vec![NodeId(2)],
                b: vec![NodeId(3)],
            },
            VodEvent::Healed {
                at: t(14.0),
                a: vec![NodeId(2)],
                b: vec![NodeId(3)],
            },
            VodEvent::NetDelivered {
                at: t(23.0),
                sent_at: t(22.9),
                from: Endpoint::new(NodeId(2), Port(1)),
                to: Endpoint::new(NodeId(107), Port(1)),
                class: "video",
            },
            VodEvent::FrameGap {
                at: t(60.0),
                client: ClientId(7),
                from_frame: FrameNo(0),
                to_frame: FrameNo(1),
            },
        ];
        let report = OracleReport::check(&recorder(events_ok), &OracleConfig::paper_default());
        assert_eq!(report.reserved_after_fault, Verdict::Pass, "{report}");
    }

    /// A client's own VCR stop ends its service obligation for good. A
    /// later `SessionStarted` against it is a stale-record resurrection
    /// (a replica that missed the removal re-serving a client that quit)
    /// and must not re-arm the re-served-after-fault demand — even if
    /// the resurrecting server then crashes with the zombie open.
    #[test]
    fn client_stop_is_terminal_despite_resurrection() {
        let report = OracleReport::check(
            &recorder(vec![
                VodEvent::NodeStarted {
                    at: t(0.0),
                    node: NodeId(1),
                },
                VodEvent::NodeStarted {
                    at: t(0.0),
                    node: NodeId(2),
                },
                started(1.0, 1, 7),
                VodEvent::VcrIssued {
                    at: t(20.0),
                    client: ClientId(7),
                    cmd: VcrCmd::Stop,
                },
                started(21.0, 2, 7),
                VodEvent::NodeCrashed {
                    at: t(25.0),
                    node: NodeId(2),
                },
                VodEvent::FrameGap {
                    at: t(60.0),
                    client: ClientId(8),
                    from_frame: FrameNo(0),
                    to_frame: FrameNo(1),
                },
            ]),
            &OracleConfig::paper_default(),
        );
        assert_eq!(report.reserved_after_fault, Verdict::Pass, "{report}");
    }

    /// The control for the terminal-stop rule: a *server-side* end
    /// superseded by a later start is a corrected takeover, and the
    /// client still demands repair when that server crashes.
    #[test]
    fn server_side_end_is_superseded_by_restart() {
        let report = OracleReport::check(
            &recorder(vec![
                VodEvent::NodeStarted {
                    at: t(0.0),
                    node: NodeId(1),
                },
                VodEvent::NodeStarted {
                    at: t(0.0),
                    node: NodeId(2),
                },
                started(1.0, 1, 7),
                VodEvent::SessionEnded {
                    at: t(20.0),
                    server: NodeId(1),
                    client: ClientId(7),
                },
                started(21.0, 2, 7),
                VodEvent::NodeCrashed {
                    at: t(25.0),
                    node: NodeId(2),
                },
                VodEvent::FrameGap {
                    at: t(60.0),
                    client: ClientId(8),
                    from_frame: FrameNo(0),
                    to_frame: FrameNo(1),
                },
            ]),
            &OracleConfig::paper_default(),
        );
        assert!(report.reserved_after_fault.is_fail(), "{report}");
    }

    fn prefix_serve(at: f64, server: u32, client: u32) -> VodEvent {
        VodEvent::PrefixServe {
            at: t(at),
            server: NodeId(server),
            client: ClientId(client),
            client_node: NodeId(100 + client),
            movie: MovieId(1),
            from_frame: FrameNo(0),
            prefix_frames: 300, // 10 s at 30 fps
            rate_fps: 30,
        }
    }

    fn prefix_handoff(at: f64, server: u32, client: u32, to_owner: u32) -> VodEvent {
        VodEvent::PrefixHandoff {
            at: t(at),
            server: NodeId(server),
            client: ClientId(client),
            movie: MovieId(1),
            frames_sent: 30,
            served_for: Duration::from_secs(1),
            to_owner: NodeId(to_owner),
        }
    }

    #[test]
    fn prompt_prefix_handoff_passes_and_a_stuck_one_fails() {
        // Serve the prefix at 1 s, real session at 3 s, handoff at 3.5 s:
        // inside the convergence window.
        let report = OracleReport::check(
            &recorder(vec![
                prefix_serve(1.0, 2, 7),
                started(3.0, 1, 7),
                prefix_handoff(3.5, 2, 7, 1),
                stopped(20.0, 1, 7),
            ]),
            &OracleConfig::paper_default(),
        );
        assert_eq!(report.prefix_handoff, Verdict::Pass, "{report}");
        // The same trace with the prefix span never closing: the client
        // rides the prefix source long past the deadline.
        let report = OracleReport::check(
            &recorder(vec![
                prefix_serve(1.0, 2, 7),
                started(3.0, 1, 7),
                stopped(20.0, 1, 7),
            ]),
            &OracleConfig::paper_default(),
        );
        assert!(report.prefix_handoff.is_fail(), "{report}");
        assert_eq!(summary_token(&report), "FAIL[prefix-handoff-complete]");
    }

    #[test]
    fn truncated_prefix_handoff_is_inconclusive_and_no_session_is_vacuous() {
        // The trace ends 0.5 s after the session start, before the 2 s
        // convergence deadline: not enough evidence either way.
        let report = OracleReport::check(
            &recorder(vec![prefix_serve(1.0, 2, 7), started(3.0, 1, 7)]),
            &OracleConfig::paper_default(),
        );
        assert!(
            matches!(report.prefix_handoff, Verdict::Inconclusive(_)),
            "{report}"
        );
        assert!(report.pass());
        // A prefix span with no session at all is not this invariant's
        // problem (coverage judges the runway instead).
        let report = OracleReport::check(
            &recorder(vec![
                prefix_serve(1.0, 2, 7),
                VodEvent::FrameGap {
                    at: t(30.0),
                    client: ClientId(7),
                    from_frame: FrameNo(0),
                    to_frame: FrameNo(1),
                },
            ]),
            &OracleConfig::paper_default(),
        );
        assert_eq!(report.prefix_handoff, Verdict::Pass, "{report}");
    }

    /// The only holder crashes at 5 s; a prefix source bridges the viewer
    /// from 5.5 s with a 10 s prefix (runway ends at 15.5 s). The bridge
    /// counts as coverage while it lasts, so the uncovered clock starts
    /// at the first event past the runway, not at the crash — but no
    /// longer than the advertised prefix.
    #[test]
    fn prefix_serve_covers_a_movie_only_until_the_prefix_runs_out() {
        let holder_back = |at: f64| {
            vec![
                VodEvent::NodeStarted {
                    at: t(at),
                    node: NodeId(3),
                },
                VodEvent::ReplicaBringUp {
                    at: t(at),
                    server: NodeId(3),
                    movie: MovieId(1),
                    demand: 1,
                    replicas: 1,
                    policy: crate::forecast::PolicyKind::Predictive,
                    trigger: crate::forecast::BringUpTrigger::Forecast,
                    forecast: crate::forecast::PopState::Hot,
                },
            ]
        };
        let base = |bridge: bool, back_at: f64| {
            let mut events = vec![
                VodEvent::NodeStarted {
                    at: t(0.0),
                    node: NodeId(1),
                },
                started(1.0, 1, 7),
                VodEvent::NodeCrashed {
                    at: t(5.0),
                    node: NodeId(1),
                },
            ];
            if bridge {
                events.push(prefix_serve(5.5, 2, 7));
            }
            // A video delivery just past the runway re-evaluates coverage
            // (and repairs invariant 4 along the way).
            events.push(VodEvent::NetDelivered {
                at: t(16.0),
                sent_at: t(15.9),
                from: Endpoint::new(NodeId(2), Port(1)),
                to: Endpoint::new(NodeId(107), Port(1)),
                class: "video",
            });
            events.extend(holder_back(back_at));
            events.push(VodEvent::FrameGap {
                at: t(60.0),
                client: ClientId(7),
                from_frame: FrameNo(0),
                to_frame: FrameNo(1),
            });
            events
        };
        // Bridged: uncovered only from the end of the runway (16 s) to
        // the replacement holder at 22 s — inside the 15 s grace.
        let report =
            OracleReport::check(&recorder(base(true, 22.0)), &OracleConfig::paper_default());
        assert_eq!(report.replica_coverage, Verdict::Pass, "{report}");
        // Unbridged: the same holder gap runs 5 s → 22 s and fails.
        let report =
            OracleReport::check(&recorder(base(false, 22.0)), &OracleConfig::paper_default());
        assert!(report.replica_coverage.is_fail(), "{report}");
        // Bridged but with the holder back only at 35 s: the prefix ran
        // out at 15.5 s and cannot stretch further — 16 s → 35 s blows
        // the grace window despite the bridge.
        let report =
            OracleReport::check(&recorder(base(true, 35.0)), &OracleConfig::paper_default());
        assert!(report.replica_coverage.is_fail(), "{report}");
    }

    /// Two sites: east = servers 1,2 homing client node 107; west =
    /// servers 3,4 (no homed clients).
    fn two_sites() -> Vec<VodEvent> {
        vec![
            VodEvent::SiteDefined {
                at: t(0.0),
                site: 0,
                name: "east".into(),
                servers: vec![NodeId(1), NodeId(2)],
                clients: vec![NodeId(107)],
            },
            VodEvent::SiteDefined {
                at: t(0.0),
                site: 1,
                name: "west".into(),
                servers: vec![NodeId(3), NodeId(4)],
                clients: vec![],
            },
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(1),
            },
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(2),
            },
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(3),
            },
            VodEvent::NodeStarted {
                at: t(0.0),
                node: NodeId(4),
            },
        ]
    }

    fn crashed(at: f64, node: u32) -> VodEvent {
        VodEvent::NodeCrashed {
            at: t(at),
            node: NodeId(node),
        }
    }

    fn video_to(at: f64, node: u32) -> VodEvent {
        VodEvent::NetDelivered {
            at: t(at),
            sent_at: t(at - 0.1),
            from: Endpoint::new(NodeId(3), Port(1)),
            to: Endpoint::new(NodeId(node), Port(1)),
            class: "video",
        }
    }

    fn pad(at: f64) -> VodEvent {
        VodEvent::FrameGap {
            at: t(at),
            client: ClientId(99),
            from_frame: FrameNo(0),
            to_frame: FrameNo(1),
        }
    }

    /// A correlated site crash must not strand the site's clients: a
    /// cross-DC rescue delivery inside the bound passes invariant 6, and
    /// a trace running past the deadline with no delivery fails it.
    #[test]
    fn site_crash_needs_a_cross_dc_rescue() {
        let base = |rescued: bool| {
            let mut events = two_sites();
            events.push(started(1.0, 1, 7));
            events.push(crashed(5.0, 1));
            events.push(crashed(5.0, 2));
            if rescued {
                events.push(video_to(9.0, 107));
            }
            events.push(pad(60.0));
            events
        };
        let report = OracleReport::check(&recorder(base(true)), &OracleConfig::paper_default());
        assert_eq!(report.reserved_after_site_fault, Verdict::Pass, "{report}");
        let report = OracleReport::check(&recorder(base(false)), &OracleConfig::paper_default());
        assert!(report.reserved_after_site_fault.is_fail(), "{report}");
    }

    /// A site *partition* (as opposed to a crash) carries its own excuse:
    /// the cuts heal at the site's recovery, so the deadline re-bases to
    /// heal + bound and a post-heal repair still passes.
    #[test]
    fn site_partition_excuses_the_rescue_until_the_heal() {
        let mut events = two_sites();
        events.push(started(1.0, 1, 7));
        // Site 0 cut from every other site's server at 5 s, healed at 20 s.
        events.push(VodEvent::Partitioned {
            at: t(5.0),
            a: vec![NodeId(1), NodeId(2)],
            b: vec![NodeId(3), NodeId(4)],
        });
        // The partition also interrupts the stream (the movie group split
        // away from the client's record holder, say).
        events.push(stopped(5.0, 1, 7));
        events.push(VodEvent::Healed {
            at: t(20.0),
            a: vec![NodeId(1), NodeId(2)],
            b: vec![NodeId(3), NodeId(4)],
        });
        // Re-served at 25 s: past fault + bound (15 s), inside heal +
        // bound (30 s).
        events.push(video_to(25.0, 107));
        events.push(pad(60.0));
        let report = OracleReport::check(&recorder(events), &OracleConfig::paper_default());
        assert_eq!(report.reserved_after_site_fault, Verdict::Pass, "{report}");
    }

    /// Invariant 7: a home-site client rescued remotely during a site
    /// crash must be handed back to a home server within one bound of the
    /// site's recovery.
    #[test]
    fn geo_affinity_must_be_restored_after_the_heal() {
        let base = |returned: bool| {
            let mut events = two_sites();
            events.push(started(1.0, 1, 7));
            events.push(crashed(5.0, 1));
            events.push(crashed(5.0, 2));
            // Remote rescue by west server 3.
            events.push(started(8.0, 3, 7));
            events.push(video_to(9.0, 107));
            // East recovers at 30 s.
            events.push(VodEvent::NodeRestarted {
                at: t(30.0),
                node: NodeId(1),
            });
            if returned {
                events.push(stopped(31.0, 3, 7));
                events.push(started(32.0, 1, 7));
            }
            events.push(pad(60.0));
            events
        };
        let report = OracleReport::check(&recorder(base(true)), &OracleConfig::paper_default());
        assert_eq!(report.geo_affinity_restored, Verdict::Pass, "{report}");
        let report = OracleReport::check(&recorder(base(false)), &OracleConfig::paper_default());
        assert!(report.geo_affinity_restored.is_fail(), "{report}");
        assert_eq!(
            summary_token(&report),
            "FAIL[geo-affinity-restored]",
            "{report}"
        );
    }

    /// Invariant 8: degraded serves are legitimate only inside (or in the
    /// immediate wake of) a home-site fault window.
    #[test]
    fn degraded_serving_requires_a_home_site_fault() {
        let degraded = |at: f64, client: u32| VodEvent::DegradedServe {
            at: t(at),
            server: NodeId(3),
            client: ClientId(client),
            movie: MovieId(1),
            rate_fps: 15,
        };
        // During the fault: excused.
        let mut events = two_sites();
        events.push(started(1.0, 1, 7));
        events.push(crashed(5.0, 1));
        events.push(crashed(5.0, 2));
        events.push(started(8.0, 3, 7));
        events.push(degraded(8.0, 7));
        events.push(video_to(9.0, 107));
        events.push(VodEvent::NodeRestarted {
            at: t(30.0),
            node: NodeId(1),
        });
        events.push(stopped(31.0, 3, 7));
        events.push(started(32.0, 1, 7));
        events.push(pad(60.0));
        let report = OracleReport::check(&recorder(events), &OracleConfig::paper_default());
        assert_eq!(
            report.degraded_only_when_home_down,
            Verdict::Pass,
            "{report}"
        );
        // While the home site is healthy: violation.
        let mut events = two_sites();
        events.push(started(1.0, 3, 7));
        events.push(degraded(1.0, 7));
        events.push(pad(60.0));
        let report = OracleReport::check(&recorder(events), &OracleConfig::paper_default());
        assert!(report.degraded_only_when_home_down.is_fail(), "{report}");
        // For a client homed to no site: violation.
        let mut events = two_sites();
        events.push(started(1.0, 3, 9));
        events.push(degraded(1.0, 9));
        events.push(pad(60.0));
        let report = OracleReport::check(&recorder(events), &OracleConfig::paper_default());
        assert!(report.degraded_only_when_home_down.is_fail(), "{report}");
    }

    /// Site-less traces judge the three site invariants vacuously.
    #[test]
    fn site_invariants_are_vacuous_without_sites() {
        let report = OracleReport::check(
            &recorder(vec![started(1.0, 1, 7), stopped(20.0, 1, 7)]),
            &OracleConfig::paper_default(),
        );
        assert_eq!(report.reserved_after_site_fault, Verdict::Pass);
        assert_eq!(report.geo_affinity_restored, Verdict::Pass);
        assert_eq!(report.degraded_only_when_home_down, Verdict::Pass);
    }

    /// The single-extension rule survives site-level faults: a site
    /// partition (multi-node sides) overlapping a single-server crash
    /// excuses the repair until heal + bound, but a later fault landing
    /// only inside that extended window must not stretch it again.
    #[test]
    fn site_partition_overlapping_a_crash_extends_once_not_chained() {
        let base = |repair_at: f64| {
            let mut events = two_sites();
            events.push(started(1.0, 1, 7));
            // Single-server crash at 5 s: original window ends at 15 s.
            events.push(crashed(5.0, 1));
            // A site partition begins inside the window and heals at
            // 14 s: excused until 24 s.
            events.push(VodEvent::Partitioned {
                at: t(6.0),
                a: vec![NodeId(1), NodeId(2)],
                b: vec![NodeId(3), NodeId(4)],
            });
            events.push(VodEvent::Healed {
                at: t(14.0),
                a: vec![NodeId(1), NodeId(2)],
                b: vec![NodeId(3), NodeId(4)],
            });
            // A second crash at 20 s sits outside the *original* window;
            // under the old chained sweep it stretched the deadline to
            // 30 s.
            events.push(crashed(20.0, 4));
            events.push(video_to(repair_at, 107));
            events.push(pad(60.0));
            events
        };
        // Repair at 23 s: inside the single-excuse window — both the
        // per-crash and the site-level invariant pass.
        let report = OracleReport::check(&recorder(base(23.0)), &OracleConfig::paper_default());
        assert_eq!(report.reserved_after_fault, Verdict::Pass, "{report}");
        assert_eq!(report.reserved_after_site_fault, Verdict::Pass, "{report}");
        // Repair at 27 s: only valid under chained extension — fail.
        let report = OracleReport::check(&recorder(base(27.0)), &OracleConfig::paper_default());
        assert!(report.reserved_after_fault.is_fail(), "{report}");
    }

    #[test]
    fn evicted_events_make_everything_inconclusive() {
        let mut rec = TraceRecorder::new(1);
        rec.push(started(1.0, 1, 7));
        rec.push(started(2.0, 2, 7));
        assert!(rec.dropped() > 0);
        let report = OracleReport::check(&rec, &OracleConfig::paper_default());
        assert!(report.pass());
        assert!(matches!(report.exclusive_service, Verdict::Inconclusive(_)));
    }

    #[test]
    fn display_is_deterministic() {
        let report = OracleReport::check(&recorder(vec![]), &OracleConfig::paper_default());
        let text = format!("{report}");
        assert!(text.contains("oracle: PASS"));
        assert!(text.contains("exclusive-service: pass"));
        assert_eq!(text, format!("{report}"));
    }
}

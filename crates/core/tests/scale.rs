//! Scale tests: many clients, several movies, overlapping replica sets,
//! failures under load — the deployment shape the paper's introduction
//! motivates (VoD provided to many homes by telecom operators).

use std::collections::BTreeMap;
use std::time::Duration;

use ftvod_core::protocol::ClientId;
use ftvod_core::scenario::ScenarioBuilder;
use ftvod_core::server::VodServer;
use media::{Movie, MovieId, MovieSpec};
use simnet::{LinkProfile, NodeId, SimTime};

fn movie(id: u32, secs: u64) -> Movie {
    Movie::generate(
        MovieId(id),
        &MovieSpec::paper_default()
            .with_duration(Duration::from_secs(secs))
            .with_seed(u64::from(id)),
    )
}

#[test]
fn sixteen_clients_two_movies_three_servers() {
    let servers = [NodeId(1), NodeId(2), NodeId(3)];
    let mut builder = ScenarioBuilder::new(31);
    builder
        .network(LinkProfile::lan())
        .movie(movie(1, 120), &servers)
        .movie(movie(2, 120), &[NodeId(2), NodeId(3)]);
    for &s in &servers {
        builder.server(s);
    }
    let clients: Vec<ClientId> = (1..=16).map(ClientId).collect();
    for &c in &clients {
        let which = if c.0 % 2 == 0 { MovieId(2) } else { MovieId(1) };
        builder.client(
            c,
            NodeId(100 + c.0),
            which,
            SimTime::from_secs(2 + u64::from(c.0) / 4),
        );
    }
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(60));
    // Everyone is served, smoothly.
    let mut load: BTreeMap<NodeId, usize> = BTreeMap::new();
    for &c in &clients {
        let owner = sim.owner_of(c).unwrap_or_else(|| panic!("{c} unserved"));
        *load.entry(owner).or_default() += 1;
        let stats = sim.client_stats(c).unwrap();
        assert_eq!(stats.stalls.total(), 0, "{c} stalled");
        assert!(
            stats.frames_received > 1300,
            "{c} starved: {}",
            stats.frames_received
        );
    }
    // The load is spread: no server hogs everything.
    let max = load.values().copied().max().unwrap();
    assert!(max <= 8, "load concentrated: {load:?}");
}

#[test]
fn crash_under_load_migrates_a_whole_cohort() {
    let servers = [NodeId(1), NodeId(2)];
    let mut builder = ScenarioBuilder::new(32);
    builder
        .network(LinkProfile::lan())
        .movie(movie(1, 120), &servers)
        .server(NodeId(1))
        .server(NodeId(2));
    let clients: Vec<ClientId> = (1..=8).map(ClientId).collect();
    for &c in &clients {
        builder.client(c, NodeId(100 + c.0), MovieId(1), SimTime::from_secs(2));
    }
    builder.crash_at(SimTime::from_secs(25), NodeId(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(55));
    for &c in &clients {
        assert_eq!(sim.owner_of(c), Some(NodeId(1)), "{c} not adopted");
        let stats = sim.client_stats(c).unwrap();
        assert_eq!(
            stats.stalls.total(),
            0,
            "{c} froze during the mass takeover"
        );
    }
    // The survivor's counters reflect the cohort takeover.
    let takeovers = sim
        .sim_mut()
        .with_process(NodeId(1), |s: &VodServer| s.stats().takeovers.total())
        .unwrap();
    assert!(takeovers >= 4, "survivor recorded {takeovers} takeovers");
}

#[test]
fn owned_over_time_series_tracks_load_balance() {
    let servers = [NodeId(1), NodeId(2), NodeId(3)];
    let mut builder = ScenarioBuilder::new(33);
    builder
        .network(LinkProfile::lan())
        .movie(movie(1, 120), &servers)
        .server(NodeId(1))
        .server(NodeId(2))
        .server_at(SimTime::from_secs(30), NodeId(3));
    for c in 1..=6u32 {
        builder.client(
            ClientId(c),
            NodeId(100 + c),
            MovieId(1),
            SimTime::from_secs(2),
        );
    }
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(60));
    let series = sim
        .sim_mut()
        .with_process(NodeId(2), |s: &VodServer| s.stats().owned_over_time.clone())
        .unwrap();
    let before = series.mean_in_window(15.0, 29.0).unwrap();
    let after = series.mean_in_window(45.0, 60.0).unwrap();
    assert!(
        after < before,
        "n2 should shed load to the new server: {before} -> {after}"
    );
    let n3_series = sim
        .sim_mut()
        .with_process(NodeId(3), |s: &VodServer| s.stats().owned_over_time.clone())
        .unwrap();
    let n3_load = n3_series.mean_in_window(45.0, 60.0).unwrap();
    assert!(n3_load >= 1.5, "new server absorbed load: {n3_load}");
}

#[test]
fn deterministic_at_scale() {
    let run = |seed: u64| {
        let servers = [NodeId(1), NodeId(2), NodeId(3)];
        let mut builder = ScenarioBuilder::new(seed);
        builder
            .network(LinkProfile::wan())
            .movie(movie(1, 90), &servers)
            .server(NodeId(1))
            .server(NodeId(2))
            .server(NodeId(3))
            .crash_at(SimTime::from_secs(20), NodeId(3));
        for c in 1..=6u32 {
            builder.client(
                ClientId(c),
                NodeId(100 + c),
                MovieId(1),
                SimTime::from_secs(2),
            );
        }
        let mut sim = builder.build();
        sim.run_until(SimTime::from_secs(45));
        (1..=6u32)
            .map(|c| {
                let stats = sim.client_stats(ClientId(c)).unwrap();
                (
                    stats.frames_received,
                    stats.skipped.total(),
                    stats.late.total(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(77), run(77));
}

//! Property-based tests for the client datapath and the deterministic
//! redistribution function.

use proptest::prelude::*;

use ftvod_core::client::{FlowController, InsertOutcome, SoftwareBuffer};
use ftvod_core::config::VodConfig;
use ftvod_core::protocol::{ClientId, FlowRequest};
use ftvod_core::server::assign_clients;
use media::{FrameMeta, FrameNo, FrameType, HardwareDecoder};
use simnet::{NodeId, SimTime};

fn frame(no: u64, intra: bool) -> FrameMeta {
    FrameMeta {
        no: FrameNo(no),
        ftype: if intra { FrameType::I } else { FrameType::B },
        size: 2_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Buffer accounting: every inserted frame is exactly one of
    /// late / evicted / still-buffered / fed; occupancy never exceeds the
    /// capacity; the feed point never moves backwards.
    #[test]
    fn buffer_accounting_is_total(
        arrivals in prop::collection::vec((0u64..400, any::<bool>()), 1..300),
        capacity in 2usize..50,
        drains in 0u32..200,
    ) {
        let mut buffer = SoftwareBuffer::new(capacity);
        let mut decoder = HardwareDecoder::new(1_000_000);
        let mut late = 0u64;
        let mut evicted = 0u64;
        let mut fed = 0u64;
        let mut inserted = 0u64;
        let mut last_feed_point = FrameNo::ZERO;
        for (i, (no, intra)) in arrivals.into_iter().enumerate() {
            inserted += 1;
            match buffer.insert(frame(no, intra)) {
                InsertOutcome::Late => late += 1,
                InsertOutcome::Accepted { evicted: Some(_) } => evicted += 1,
                InsertOutcome::Accepted { evicted: None } => {}
            }
            prop_assert!(buffer.occupancy() <= capacity);
            let summary = buffer.feed(&mut decoder);
            fed += u64::from(summary.fed);
            prop_assert!(buffer.next_feed() >= last_feed_point, "feed point went back");
            last_feed_point = buffer.next_feed();
            if (i as u32).is_multiple_of(3) {
                for _ in 0..(drains % 4) {
                    let _ = decoder.tick_display();
                }
            }
        }
        prop_assert_eq!(
            inserted,
            late + evicted + fed + buffer.occupancy() as u64,
            "every frame must be accounted for exactly once"
        );
    }

    /// Under the paper's policy an I frame is evicted only when the buffer
    /// holds nothing but I frames.
    #[test]
    fn i_frames_survive_unless_alone(
        arrivals in prop::collection::vec((0u64..200, any::<bool>()), 1..200),
        capacity in 2usize..20,
    ) {
        let mut buffer = SoftwareBuffer::new(capacity);
        for (no, intra) in arrivals {
            let inserting_all_intra = intra;
            match buffer.insert(frame(no, intra)) {
                InsertOutcome::Accepted { evicted: Some(e) } if e.ftype.is_intra() => {
                    // Only legal if every remaining frame is also intra
                    // (we cannot see inside, but the evicted-I case
                    // requires the insert itself to have been intra-only
                    // pressure; a B frame in the buffer would have been
                    // chosen instead).
                    prop_assert!(
                        inserting_all_intra || e.no == FrameNo(no),
                        "evicted an I frame while incremental frames existed"
                    );
                }
                _ => {}
            }
        }
    }

    /// The flow controller only ever emits the request its stateless
    /// decision table prescribes, and only at evaluation boundaries.
    #[test]
    fn flow_controller_matches_decision_table(
        occupancies in prop::collection::vec(0usize..80, 1..400),
    ) {
        let cfg = VodConfig::paper_default();
        let mut fc = FlowController::new(&cfg, 78);
        let oracle = FlowController::new(&cfg, 78);
        let mut frames_since = 0u32;
        let mut prev_eval = 0usize;
        for (i, occ) in occupancies.into_iter().enumerate() {
            let now = SimTime::from_millis(33 * i as u64);
            let got = fc.on_frame_received(now, occ);
            frames_since += 1;
            if frames_since < oracle.check_every(occ) {
                prop_assert_eq!(got, None, "request before the evaluation boundary");
            } else {
                frames_since = 0;
                let want = oracle.decision(occ, prev_eval);
                prev_eval = occ;
                match (got, want) {
                    // Emergencies may be downgraded by the cooldown.
                    (Some(FlowRequest::Increase), Some(FlowRequest::Emergency { .. })) => {}
                    (g, w) => prop_assert_eq!(g, w, "decision mismatch at occupancy {}", occ),
                }
            }
        }
    }

    /// Redistribution is deterministic, total and balanced.
    #[test]
    fn assignment_is_balanced_total_deterministic(
        clients in prop::collection::btree_set(0u32..500, 1..60),
        servers in prop::collection::btree_set(0u32..40, 1..8),
    ) {
        let clients: Vec<ClientId> = clients.into_iter().map(ClientId).collect();
        let servers: Vec<NodeId> = servers.into_iter().map(NodeId).collect();
        let a = assign_clients(&clients, &servers);
        prop_assert_eq!(a.len(), clients.len(), "every client assigned");
        let mut shuffled_clients = clients.clone();
        shuffled_clients.reverse();
        let mut shuffled_servers = servers.clone();
        shuffled_servers.reverse();
        let b = assign_clients(&shuffled_clients, &shuffled_servers);
        prop_assert_eq!(&a, &b, "input order must not matter");
        let mut counts = std::collections::BTreeMap::new();
        for owner in a.values() {
            *counts.entry(*owner).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let min = servers
            .iter()
            .map(|s| counts.get(s).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        prop_assert!(max - min <= 1, "unbalanced: {counts:?}");
    }
}

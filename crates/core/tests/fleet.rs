//! Fleet-level service behaviour: admission control under churn, the
//! dynamic replica manager's bring-up/retire lifecycle, and the headline
//! comparison of dynamic vs static placement under a skewed workload.

use std::time::Duration;

use ftvod_core::config::{ReplicationConfig, VodConfig};
use ftvod_core::protocol::ClientId;
use ftvod_core::scenario::{ScenarioBuilder, VcrOp};
use ftvod_core::server::VodServer;
use ftvod_core::trace::DEFAULT_EVENT_CAPACITY;
use ftvod_core::workload::{fleet_builder, FleetProfile, FleetReport};
use media::{Movie, MovieId, MovieSpec};
use simnet::{NodeId, SimTime};

/// Admission control under churn: with one slot per server, late arrivals
/// are parked as UNSERVED, keep retrying, and are admitted — in arrival
/// order — exactly as the earlier viewers stop. Nothing leaks: once every
/// viewer has stopped, no server owns a session.
#[test]
fn parked_clients_are_admitted_as_sessions_end_without_leaks() {
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(120)),
    );
    let servers = [NodeId(1), NodeId(2)];
    let mut builder = ScenarioBuilder::new(5);
    builder
        .config(VodConfig::paper_default().with_session_cap(1))
        .movie(movie, &servers)
        .server(NodeId(1))
        .server(NodeId(2));
    let clients: Vec<ClientId> = (1..=4).map(ClientId).collect();
    for (i, &c) in clients.iter().enumerate() {
        builder.client(
            c,
            NodeId(100 + c.0),
            MovieId(1),
            SimTime::from_secs_f64(2.0 + 0.1 * i as f64),
        );
    }
    // The two admitted viewers stop mid-movie, freeing their slots; the
    // two parked viewers stop later, after they have been served.
    builder.vcr_at(SimTime::from_secs(10), ClientId(1), VcrOp::Stop);
    builder.vcr_at(SimTime::from_secs(12), ClientId(2), VcrOp::Stop);
    builder.vcr_at(SimTime::from_secs(20), ClientId(3), VcrOp::Stop);
    builder.vcr_at(SimTime::from_secs(22), ClientId(4), VcrOp::Stop);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(30));

    let first_frame = |c: ClientId| {
        sim.client_stats(c)
            .and_then(|s| s.first_frame_at)
            .unwrap_or_else(|| panic!("{c} was never served"))
    };
    // The first two viewers are admitted immediately.
    assert!(first_frame(ClientId(1)) < SimTime::from_secs(4));
    assert!(first_frame(ClientId(2)) < SimTime::from_secs(4));
    // The parked viewers are only served once a slot frees, in arrival
    // order: client 3 (parked first, retrying earlier) before client 4.
    assert!(first_frame(ClientId(3)) >= SimTime::from_secs(10));
    assert!(first_frame(ClientId(4)) >= SimTime::from_secs(12));
    assert!(
        first_frame(ClientId(3)) < first_frame(ClientId(4)),
        "re-admission must follow the deterministic parked order"
    );
    // The coordinator counted the two refusals (one per parked viewer).
    let rejections: u64 = servers
        .iter()
        .filter_map(|&n| sim.server_stats(n))
        .map(|s| s.admission_rejections.total())
        .sum();
    assert_eq!(rejections, 2, "each parked viewer is one refusal");
    // No leaks: every viewer stopped, so nobody owns a session and no
    // client record remains on either server.
    for &c in &clients {
        assert_eq!(sim.owner_of(c), None, "{c} still owned after stopping");
    }
    for &n in &servers {
        let leftovers = sim
            .sim_mut()
            .with_process(n, |s: &VodServer| s.known_records(MovieId(1)).len())
            .unwrap();
        assert_eq!(leftovers, 0, "{n} still holds client records");
    }
}

/// The replica lifecycle end to end: a single-copy movie goes hot (12
/// sessions against a threshold of 8), the manager brings up a second
/// replica; once the viewers drain away the surplus replica is retired.
/// Both decisions surface in the per-server stats and the trace report.
#[test]
fn hot_movie_gains_a_replica_and_cold_movie_loses_it() {
    let mut profile = FleetProfile::small_fleet();
    profile.servers = 2;
    profile.clients = 12;
    profile.catalog_size = 1;
    profile.initial_replicas = 1;
    profile.sessions_per_server = Some(16);
    profile.arrival_window = Duration::from_secs(6);
    profile.min_session = Duration::from_secs(20);
    profile.max_session = Duration::from_secs(30);
    profile.vcr_pause_prob = 0.0;
    profile.vcr_seek_prob = 0.0;
    profile.churn_prob = 0.0;
    let (mut builder, plan) = fleet_builder(&profile, 3, Some(ReplicationConfig::paper_default()));
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    let end = profile.run_until();
    sim.run_until(end);

    let report = FleetReport::from_sim(&plan, &sim, end);
    assert_eq!(report.served, 12, "every session must be served");
    let (mut bringups, mut retires) = (0u64, 0u64);
    for node in profile.server_nodes() {
        let stats = sim.server_stats(node).unwrap();
        bringups += stats.replica_bringups.total();
        retires += stats.replica_retires.total();
    }
    assert!(bringups >= 1, "the hot movie must gain a replica");
    assert!(
        retires >= 1,
        "the drained movie must shed the extra replica"
    );
    // The decisions are visible in the derived trace report as well.
    let run = sim.report().expect("recording was enabled");
    assert_eq!(run.replica_bringups, bringups);
    assert_eq!(run.replica_retires, retires);
    // After the retire, the movie is back to a single holder.
    let holders: usize = profile
        .server_nodes()
        .iter()
        .filter(|&&n| {
            sim.sim_mut()
                .with_process(n, |s: &VodServer| s.movies_held().contains(&MovieId(1)))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(holders, 1, "cold movie must end on exactly one replica");
}

/// The headline claim: under a skewed workload whose hot movie exceeds any
/// single server's admission cap, dynamic replication serves viewers that
/// static placement leaves waiting.
#[test]
fn dynamic_replication_beats_static_placement() {
    let mut profile = FleetProfile::small_fleet();
    profile.servers = 4;
    profile.clients = 80;
    profile.catalog_size = 5;
    profile.zipf_exponent = 1.3;
    profile.sessions_per_server = Some(30);
    let run = |replication| {
        let (builder, plan) = fleet_builder(&profile, 7, replication);
        let mut sim = builder.build();
        let end = profile.run_until();
        sim.run_until(end);
        FleetReport::from_sim(&plan, &sim, end)
    };
    let fixed = run(None);
    let dynamic = run(Some(ReplicationConfig::paper_default()));
    assert_eq!(
        dynamic.served + dynamic.never_served,
        80,
        "every planned session is accounted for"
    );
    assert!(
        dynamic.unserved_seconds < fixed.unserved_seconds,
        "dynamic ({:.1}s unserved) must beat static ({:.1}s unserved)",
        dynamic.unserved_seconds,
        fixed.unserved_seconds
    );
    assert!(
        dynamic.served >= fixed.served,
        "dynamic must serve at least as many sessions"
    );
}

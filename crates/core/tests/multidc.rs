//! Multi-datacenter failover integration: on the fixed two-site scenario
//! (correlated east-site crash mid-run), cross-DC failover must strictly
//! reduce unserved client-seconds versus the home-only baseline, the
//! degraded mode must admit at least as many rescues as plain remote
//! failover, the oracle's site-aware invariants must hold on the
//! failover runs, and the whole pipeline must be byte-deterministic.

use ftvod_core::oracle::summary_token;
use ftvod_core::{
    multidc_builder, multidc_profile, FailoverMode, FleetReport, OracleConfig, OracleReport,
    RunReport, VodEvent,
};

const SEED: u64 = 42;

struct MultiDcRun {
    fleet: FleetReport,
    report: RunReport,
    oracle: String,
    degraded_serves: usize,
    render: String,
}

fn run_multidc(seed: u64, mode: FailoverMode) -> MultiDcRun {
    let end = multidc_profile().run_until();
    let (mut builder, plan) = multidc_builder(seed, mode);
    builder.record_events(1 << 20);
    let mut sim = builder.build();
    sim.run_until(end);
    let fleet = FleetReport::from_sim(&plan, &sim, end);
    let report = sim.trace().report().expect("recording on");
    let oracle = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .map(|r| summary_token(&r))
        .expect("recording on");
    let degraded_serves = sim
        .trace()
        .with_recorder(|rec| {
            rec.events()
                .filter(|e| matches!(e, VodEvent::DegradedServe { .. }))
                .count()
        })
        .expect("recording on");
    let render = format!("{}\n{report}", fleet.render());
    MultiDcRun {
        fleet,
        report,
        oracle,
        degraded_serves,
        render,
    }
}

#[test]
fn cross_dc_failover_strictly_beats_the_home_only_baseline() {
    let home_only = run_multidc(SEED, FailoverMode::HomeOnly);
    let remote = run_multidc(SEED, FailoverMode::Remote);
    let degraded = run_multidc(SEED, FailoverMode::RemoteDegraded);

    // The site fault must actually bite under home-only: stranded east
    // clients stall until their home site returns, while cross-DC rescue
    // bridges them within the repair bound.
    assert!(
        home_only.fleet.total_unserved() > remote.fleet.total_unserved(),
        "failover must strictly reduce unserved time: home-only {:.3}s vs remote {:.3}s",
        home_only.fleet.total_unserved(),
        remote.fleet.total_unserved()
    );
    assert!(
        remote.fleet.total_unserved() >= degraded.fleet.total_unserved(),
        "shed headroom must not hurt: remote {:.3}s vs degraded {:.3}s",
        remote.fleet.total_unserved(),
        degraded.fleet.total_unserved()
    );

    // Degraded mode is the only one allowed to emit degraded serves, and
    // on this scenario it must actually exercise them.
    assert_eq!(home_only.degraded_serves, 0);
    assert_eq!(remote.degraded_serves, 0);
    assert!(
        degraded.degraded_serves > 0,
        "the east-site crash must force degraded rescues"
    );
    assert_eq!(
        degraded.report.degraded_serves,
        degraded.degraded_serves as u64
    );

    // The failover runs hold every oracle invariant, including the three
    // site-aware ones.
    assert_eq!(remote.oracle, "PASS");
    assert_eq!(degraded.oracle, "PASS");
}

#[test]
fn multidc_runs_are_byte_deterministic() {
    for mode in [
        FailoverMode::HomeOnly,
        FailoverMode::Remote,
        FailoverMode::RemoteDegraded,
    ] {
        let a = run_multidc(7, mode);
        let b = run_multidc(7, mode);
        assert_eq!(
            a.render,
            b.render,
            "mode {} must be byte-identical across runs",
            mode.as_str()
        );
        assert_eq!(a.oracle, b.oracle);
    }
}

//! Integration tests for the observability subsystem: the determinism
//! contract (tracing never perturbs the simulation), byte-identical
//! exports across same-seed runs, and end-to-end report correlation on
//! the paper's LAN crash scenario.

use ftvod_core::metrics::Histogram;
use ftvod_core::protocol::ClientId;
use ftvod_core::scenario::presets;
use ftvod_core::trace::DEFAULT_EVENT_CAPACITY;
use proptest::prelude::*;
use simnet::{NodeId, SimTime};

const END: SimTime = SimTime::from_secs(92);
const SERVERS: [NodeId; 3] = [NodeId(1), NodeId(2), NodeId(3)];

/// Same seed, recording enabled in both runs: the exported JSONL streams
/// must be byte-identical (satellite 3a). This is what makes a trace file
/// a reproducible artifact rather than a log.
#[test]
fn same_seed_jsonl_is_byte_identical() {
    let mut exports = Vec::new();
    for _ in 0..2 {
        let (mut builder, _, _) = presets::fig4_lan(11);
        builder.record_events(DEFAULT_EVENT_CAPACITY);
        let mut sim = builder.build();
        sim.run_until(END);
        exports.push(sim.events_jsonl().expect("recording enabled"));
    }
    assert!(!exports[0].is_empty(), "scenario produced no events");
    assert_eq!(exports[0], exports[1], "same-seed exports diverged");
}

/// The zero-cost guarantee, proven end to end: running the Fig-4 LAN
/// scenario with the recorder installed yields bit-identical client and
/// server statistics to running it without. Tracing is strictly passive —
/// it touches no RNG draw, timer, or send.
#[test]
fn tracer_does_not_perturb_simulation() {
    let run = |record: bool| {
        let (mut builder, _, _) = presets::fig4_lan(42);
        if record {
            builder.record_events(DEFAULT_EVENT_CAPACITY);
        }
        let mut sim = builder.build();
        sim.run_until(END);
        let client = sim.client_stats(ClientId(1)).expect("client exists");
        let servers: Vec<_> = SERVERS.iter().map(|&n| sim.server_stats(n)).collect();
        (client, servers)
    };
    let traced = run(true);
    let plain = run(false);
    assert_eq!(traced.0, plain.0, "client stats diverged under tracing");
    assert_eq!(traced.1, plain.1, "server stats diverged under tracing");
}

/// The Fig-4 LAN crash produces a takeover the report can fully explain:
/// a crash-triggered ownership change with a positive view-change phase
/// and a positive resume phase whose sum is the total interruption.
#[test]
fn lan_crash_report_breaks_down_takeover_latency() {
    let (mut builder, crash_at, _) = presets::fig4_lan(42);
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    sim.run_until(END);

    let report = sim.report().expect("recording enabled");
    let crash_takeover = report
        .takeovers
        .iter()
        .find(|t| t.trigger == "crash")
        .expect("crash takeover correlated");

    assert_eq!(crash_takeover.client, ClientId(1));
    assert!(
        (crash_takeover.triggered_s - crash_at.as_secs_f64()).abs() < 1e-6,
        "takeover trigger should be the scripted crash time"
    );
    assert!(
        crash_takeover.view_change_s > 0.0,
        "view change took no time"
    );
    assert!(crash_takeover.resume_s >= 0.0);
    assert!(
        (crash_takeover.view_change_s + crash_takeover.resume_s - crash_takeover.total_s).abs()
            < 1e-9,
        "breakdown phases must sum to the total"
    );
    // The paper's headline: takeover is sub-second on a LAN, invisible to
    // a human observer.
    assert!(
        crash_takeover.total_s < 5.0,
        "LAN takeover unreasonably slow: {:.3}s",
        crash_takeover.total_s
    );
    assert!(
        report.views_installed > 0 && report.events_seen > 0,
        "report should have consumed GCS and network events"
    );
}

/// Every layer shows up in the JSONL export: network, GCS membership,
/// server session management, and client playback each contribute at
/// least one event kind on the crash scenario.
#[test]
fn jsonl_covers_all_layers() {
    let (mut builder, _, _) = presets::fig4_lan(42);
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    sim.run_until(END);
    let jsonl = sim.events_jsonl().expect("recording enabled");

    for needle in [
        "\"ev\":\"net_delivered\"",   // network layer
        "\"ev\":\"node_crashed\"",    // fault injection
        "\"ev\":\"view_installed\"",  // GCS membership
        "\"ev\":\"session_started\"", // server layer
        "\"ev\":\"open_requested\"",  // client layer
        "\"ev\":\"band_changed\"",    // flow control
    ] {
        assert!(jsonl.contains(needle), "export missing {needle}");
    }
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"t_us\":") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite 3b: histogram quantiles are monotone in `q` and bounded
    /// by the observed min/max, for arbitrary finite samples.
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0.0f64..10_000.0, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..20),
    ) {
        let mut hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let min = hist.min().unwrap();
        let max = hist.max().unwrap();

        let mut sorted_qs = qs;
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &q in &sorted_qs {
            let v = hist.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile not monotone: q={q} v={v} prev={prev}");
            prop_assert!(v >= min, "q={q} v={v} below min={min}");
            prop_assert!(v <= max, "q={q} v={v} above max={max}");
            prev = v;
        }
    }
}

//! Integration tests for the self-profiling subsystem: the trace ring
//! buffer's overflow accounting, the determinism contract on profile
//! counters (same seed, same counters, byte for byte), and the
//! zero-perturbation guarantee (profiling never changes what the
//! simulation computes).

use ftvod_core::profile::Subsystem;
use ftvod_core::protocol::ClientId;
use ftvod_core::scenario::presets;
use simnet::{NodeId, SimTime};

const END: SimTime = SimTime::from_secs(92);
const SERVERS: [NodeId; 3] = [NodeId(1), NodeId(2), NodeId(3)];

/// A capacity far below the Fig-4 event volume, forcing eviction.
const TINY_CAPACITY: usize = 64;

/// When the ring buffer overflows, eviction is accounted deterministically:
/// two same-seed runs drop the same number of events and retain the same
/// window, byte for byte.
#[test]
fn ring_buffer_overflow_accounting_is_deterministic() {
    let run = || {
        let (mut builder, _, _) = presets::fig4_lan(42);
        builder.record_events(TINY_CAPACITY);
        let mut sim = builder.build();
        sim.run_until(END);
        let (len, capacity, dropped) = sim
            .trace()
            .with_recorder(|rec| (rec.len(), rec.capacity(), rec.dropped()))
            .expect("recording enabled");
        let jsonl = sim.events_jsonl().expect("recording enabled");
        (len, capacity, dropped, jsonl)
    };
    let (len, capacity, dropped, jsonl) = run();
    assert_eq!(capacity, TINY_CAPACITY);
    assert_eq!(len, TINY_CAPACITY, "buffer should be full");
    assert!(
        dropped > 0,
        "scenario should overflow a {TINY_CAPACITY}-slot buffer"
    );
    assert_eq!(
        jsonl.lines().count(),
        TINY_CAPACITY,
        "JSONL is the retained window"
    );

    let (len2, _, dropped2, jsonl2) = run();
    assert_eq!(len, len2, "retained count diverged across same-seed runs");
    assert_eq!(
        dropped, dropped2,
        "drop accounting diverged across same-seed runs"
    );
    assert_eq!(
        jsonl, jsonl2,
        "retained window diverged across same-seed runs"
    );
}

/// The profile counter table — scheduler event counts, span counts,
/// network totals — is identical across repeated same-seed runs. Only
/// the wall-clock side of the report may vary.
#[test]
fn profile_counters_are_deterministic_across_runs() {
    let counters = || {
        let (mut builder, _, _) = presets::fig4_lan(42);
        builder.profile_costs();
        let mut sim = builder.build();
        sim.run_until(END);
        sim.profile_report().expect("profiling enabled").counters
    };
    let first = counters();
    assert!(
        first.get("sched.events_total").copied().unwrap_or(0) > 0,
        "scheduler dispatched no events"
    );
    assert!(
        first
            .get("span.client.playback.count")
            .copied()
            .unwrap_or(0)
            > 0,
        "client playback recorded no spans"
    );
    assert!(
        first
            .get("span.gcs.view_change.count")
            .copied()
            .unwrap_or(0)
            > 0,
        "the crash scenario installed no views"
    );
    assert_eq!(first, counters(), "counters diverged across same-seed runs");
}

/// The zero-overhead-when-off contract's other half: when profiling is
/// on, it is strictly passive. Client and server statistics are
/// bit-identical with and without profiling — no RNG draw, timer, or
/// message depends on it.
#[test]
fn profiling_does_not_perturb_simulation() {
    let run = |profiled: bool| {
        let (mut builder, _, _) = presets::fig4_lan(42);
        if profiled {
            builder.profile_costs();
        }
        let mut sim = builder.build();
        sim.run_until(END);
        let client = sim.client_stats(ClientId(1)).expect("client exists");
        let servers: Vec<_> = SERVERS.iter().map(|&n| sim.server_stats(n)).collect();
        (client, servers)
    };
    let profiled = run(true);
    let plain = run(false);
    assert_eq!(profiled.0, plain.0, "client stats diverged under profiling");
    assert_eq!(profiled.1, plain.1, "server stats diverged under profiling");
}

/// A flamechart buffer far smaller than the span volume drops the excess
/// and says how many; the drop count is deterministic, and the retained
/// trace is valid Chrome-trace JSON with one metadata record per
/// subsystem.
#[test]
fn flamechart_capacity_overflow_is_accounted() {
    let run = || {
        let (mut builder, _, _) = presets::fig4_lan(42);
        builder.profile_flamechart(16);
        let mut sim = builder.build();
        sim.run_until(END);
        let dropped = sim.profile().flamechart_dropped();
        let trace = sim
            .profile()
            .chrome_trace_json()
            .expect("profiling enabled");
        (dropped, trace)
    };
    let (dropped, trace) = run();
    assert!(dropped > 0, "the scenario should overflow 16 span slots");
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"thread_name\""));
    assert!(trace.contains(Subsystem::ClientPlayback.name()));
    let (dropped2, _) = run();
    assert_eq!(dropped, dropped2, "flamechart drop count diverged");
}

/// Disabled profiling stays disabled: no report, no flamechart, handle
/// reports off. This is the configuration every non-perf run uses, so it
/// must never silently flip on.
#[test]
fn profiling_is_off_by_default() {
    let (builder, _, _) = presets::fig4_lan(42);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(10));
    assert!(!sim.profile().is_enabled());
    assert!(sim.profile_report().is_none());
    assert!(sim.profile().chrome_trace_json().is_none());
}

//! Flash-crowd integration: the predictive placement policy plus the
//! prefix-cache tier must beat the reactive baseline end to end on a
//! real fleet run — fewer unserved client-seconds, an earlier first
//! bring-up of the shocked movie, prefix transmissions actually
//! happening and handing off, and every oracle invariant green.

use ftvod_core::oracle::summary_token;
use ftvod_core::{
    fleet_builder_with_config, fleet_config, FleetProfile, FleetReport, OracleConfig, OracleReport,
    PolicyKind, PrefixCacheConfig, ReplicationConfig, RunReport, VodEvent,
};
use media::MovieId;

const SEED: u64 = 42;

struct FlashRun {
    fleet: FleetReport,
    report: RunReport,
    oracle: String,
    first_bringup_us: Option<u64>,
    prefix_serve_events: usize,
    prefix_handoff_events: usize,
    render: String,
}

fn run_flash(policy: PolicyKind, prefix: bool) -> FlashRun {
    let profile = FleetProfile::flash_crowd();
    let shock = profile.shock.expect("flash_crowd has a shock");
    let tail = MovieId(profile.catalog_size);
    let end = profile.run_until();
    let mut cfg =
        fleet_config(&profile, Some(ReplicationConfig::paper_default())).with_placement(policy);
    if prefix {
        cfg = cfg.with_prefix_cache(PrefixCacheConfig::paper_default());
    }
    let (mut builder, plan) = fleet_builder_with_config(&profile, SEED, cfg);
    builder.record_events(1 << 20);
    let mut sim = builder.build();
    sim.run_until(end);
    let fleet = FleetReport::from_sim(&plan, &sim, end);
    let report = sim.trace().report().expect("recording on");
    let oracle = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .map(|r| summary_token(&r))
        .expect("recording on");
    let (first_bringup_us, serves, handoffs) = sim
        .trace()
        .with_recorder(|rec| {
            let mut first = None;
            let (mut serves, mut handoffs) = (0usize, 0usize);
            for e in rec.events() {
                match e {
                    VodEvent::ReplicaBringUp { at, movie, .. }
                        if *movie == tail && at.as_micros() >= shock.at.as_micros() as u64 =>
                    {
                        first = Some(first.map_or(at.as_micros(), |f: u64| f.min(at.as_micros())));
                    }
                    VodEvent::PrefixServe { .. } => serves += 1,
                    VodEvent::PrefixHandoff { .. } => handoffs += 1,
                    _ => {}
                }
            }
            (first, serves, handoffs)
        })
        .expect("recording on");
    let render = format!("{}\n{report}", fleet.render());
    FlashRun {
        fleet,
        report,
        oracle,
        first_bringup_us,
        prefix_serve_events: serves,
        prefix_handoff_events: handoffs,
        render,
    }
}

#[test]
fn predictive_with_prefix_cache_dominates_reactive_on_the_flash_crowd() {
    let reactive = run_flash(PolicyKind::Reactive, false);
    let predictive = run_flash(PolicyKind::Predictive, true);

    // Safety first: every invariant, including prefix-handoff-complete,
    // holds for both runs.
    assert_eq!(reactive.oracle, "PASS", "reactive run must be safe");
    assert_eq!(predictive.oracle, "PASS", "predictive run must be safe");

    // The headline: strictly fewer unserved client-seconds and a
    // strictly earlier first bring-up of the shocked movie.
    assert!(
        predictive.fleet.unserved_seconds < reactive.fleet.unserved_seconds,
        "predictive+prefix must cut unserved time: {:.3}s vs reactive {:.3}s",
        predictive.fleet.unserved_seconds,
        reactive.fleet.unserved_seconds
    );
    let (p_first, r_first) = (
        predictive.first_bringup_us.expect("predictive reacted"),
        reactive.first_bringup_us.expect("reactive reacted"),
    );
    assert!(
        p_first < r_first,
        "predictive must bring up the shocked movie earlier: {p_first}us vs {r_first}us"
    );

    // The prefix tier actually carried load: serve + handoff events in
    // the trace, mirrored in the run report's attribution.
    assert!(predictive.prefix_serve_events > 0, "no prefix serves");
    assert!(predictive.prefix_handoff_events > 0, "no prefix handoffs");
    assert_eq!(
        predictive.report.prefix_serves,
        predictive.prefix_serve_events as u64
    );
    assert_eq!(
        predictive.report.prefix_handoffs,
        predictive.prefix_handoff_events as u64
    );
    assert!(
        predictive.report.prefix_seconds_avoided > 0.0,
        "prefix serving should be credited with avoided waiting time"
    );

    // The reactive baseline, with no prefix cache configured, must not
    // fabricate prefix activity.
    assert_eq!(reactive.prefix_serve_events, 0);
    assert_eq!(reactive.report.prefix_serves, 0);

    // Both placement policies keep every client served eventually.
    assert_eq!(predictive.fleet.never_served, 0);
    assert_eq!(reactive.fleet.never_served, 0);

    // The report breaks down bring-ups by trigger: the predictive run's
    // bring-ups credit the forecast.
    let forecast_bringups = predictive
        .report
        .bringup_triggers
        .get("forecast")
        .copied()
        .unwrap_or(0);
    assert!(
        forecast_bringups > 0,
        "predictive bring-ups must be attributed to the forecast trigger: {:?}",
        predictive.report.bringup_triggers
    );
}

#[test]
fn the_flash_crowd_run_is_byte_deterministic() {
    let a = run_flash(PolicyKind::Predictive, true);
    let b = run_flash(PolicyKind::Predictive, true);
    assert_eq!(
        a.render, b.render,
        "double run must render byte-identically"
    );
    assert_eq!(a.oracle, b.oracle);
    assert_eq!(a.prefix_serve_events, b.prefix_serve_events);
}

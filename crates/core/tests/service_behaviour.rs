//! Service-level integration tests: smooth streaming, transparent
//! failover, load balancing, VCR control, quality adaptation and the
//! fault-tolerance baselines.

use std::time::Duration;

use ftvod_core::config::{TakeoverPolicy, VodConfig};
use ftvod_core::protocol::ClientId;
use ftvod_core::scenario::{presets, ScenarioBuilder, VcrOp, VodSim};
use media::{FrameNo, Movie, MovieId, MovieSpec};
use simnet::{LinkProfile, NodeId, SimTime};

const C1: ClientId = ClientId(1);
const S1: NodeId = NodeId(1);
const S2: NodeId = NodeId(2);
const S3: NodeId = NodeId(3);
const CLIENT_NODE: NodeId = NodeId(100);

fn movie(secs: u64) -> Movie {
    Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(secs)),
    )
}

/// A plain two-replica deployment with one client, no faults.
fn plain_scenario(seed: u64) -> VodSim {
    let mut builder = ScenarioBuilder::new(seed);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2));
    builder.build()
}

#[test]
fn fault_free_run_is_smooth() {
    let mut sim = plain_scenario(1);
    sim.run_until(SimTime::from_secs(60));
    let stats = sim.client_stats(C1).expect("client exists");
    assert!(
        stats.frames_received > 1600,
        "got {}",
        stats.frames_received
    );
    assert_eq!(stats.stalls.total(), 0, "no visible jitter without faults");
    assert!(
        stats.skipped.total() <= 15,
        "startup emergency may cost a few frames, got {}",
        stats.skipped.total()
    );
    assert_eq!(stats.late.total(), 0, "LAN with one server: nothing late");
    let displayed = sim.client_displayed(C1).unwrap();
    // ~58 s of display at 30 fps, minus startup buffering.
    assert!(displayed > 1600, "displayed only {displayed}");
}

#[test]
fn buffers_settle_between_water_marks() {
    let mut sim = plain_scenario(2);
    sim.run_until(SimTime::from_secs(60));
    let stats = sim.client_stats(C1).unwrap();
    // After the fill phase the combined policy holds hw nearly full and sw
    // oscillating in a band (paper: mean sw occupancy ≈ 23 of 37).
    let sw_mean = stats.sw_occupancy.mean_in_window(30.0, 60.0).unwrap();
    assert!(
        (10.0..35.0).contains(&sw_mean),
        "software occupancy mean {sw_mean} out of band"
    );
    let hw_mean = stats.hw_occupancy.mean_in_window(30.0, 60.0).unwrap();
    assert!(
        hw_mean > 200_000.0,
        "hardware buffer should sit near full, mean {hw_mean}"
    );
}

#[test]
fn initial_assignment_prefers_highest_id_replica() {
    let mut sim = plain_scenario(3);
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(sim.owner_of(C1), Some(S2));
}

#[test]
fn crash_failover_is_transparent() {
    let (builder, crash_at, _) = presets::fig4_lan(4);
    let mut sim = builder.build();
    sim.run_until(crash_at + Duration::from_secs(10));
    assert_eq!(sim.owner_of(C1), Some(S1), "survivor took over");
    let stats = sim.client_stats(C1).unwrap();
    assert_eq!(
        stats.stalls.total(),
        0,
        "the migration must not be noticeable to a human observer"
    );
    // The takeover resumes from the last synchronized offset, so some
    // frames are transmitted twice and counted late (paper Fig 4b).
    assert!(stats.late.total() > 0, "expected duplicate (late) frames");
    assert!(
        stats.late.total() < 40,
        "duplicates bounded by the sync skew, got {}",
        stats.late.total()
    );
    // The stream interruption stays in the sub-second range (paper §4.2).
    let max_gap = stats
        .interruptions
        .iter()
        .map(|&(_, d)| d)
        .fold(0.0_f64, f64::max);
    assert!(max_gap < 1.5, "takeover gap too long: {max_gap}s");
}

#[test]
fn new_server_attracts_the_client_for_load_balancing() {
    let (builder, _, balance_at) = presets::fig4_lan(5);
    let mut sim = builder.build();
    sim.run_until(balance_at + Duration::from_secs(8));
    assert_eq!(
        sim.owner_of(C1),
        Some(S3),
        "client migrated to the new server"
    );
    let stats = sim.client_stats(C1).unwrap();
    assert_eq!(stats.stalls.total(), 0, "load balancing must be seamless");
}

#[test]
fn full_fig4_run_matches_paper_shapes() {
    let (builder, crash_at, balance_at) = presets::fig4_lan(6);
    let crash_s = crash_at.as_secs_f64();
    let balance_s = balance_at.as_secs_f64();
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(122));
    let stats = sim.client_stats(C1).unwrap();
    // 4(a): skipped frames step only around emergencies, a handful each.
    let quiet_window = stats.skipped.in_window(20.0, crash_s - 1.0);
    assert_eq!(quiet_window, 0, "no skips between startup and the crash");
    assert!(
        stats.skipped.total() <= 30,
        "total skipped {}",
        stats.skipped.total()
    );
    // No I frame is ever sacrificed (paper: "none of the skipped frames
    // was an I frame").
    assert_eq!(stats.i_frames_evicted, 0);
    // 4(b): late frames step at the crash and at the load balance.
    assert!(stats.late.in_window(crash_s, crash_s + 5.0) > 0);
    assert!(stats.late.in_window(balance_s, balance_s + 5.0) > 0);
    assert_eq!(stats.late.in_window(10.0, crash_s - 1.0), 0);
    // 4(c): software occupancy dips sharply at the crash, recovers.
    let dip = stats
        .sw_occupancy
        .min_in_window(crash_s, crash_s + 3.0)
        .unwrap();
    assert!(
        dip <= 8.0,
        "crash should drain the software buffer, min {dip}"
    );
    let recovered = stats
        .sw_occupancy
        .mean_in_window(crash_s + 8.0, balance_s - 1.0)
        .unwrap();
    assert!(recovered > 10.0, "buffer recovered to {recovered}");
    // 4(d): hardware buffer refills to near capacity after events.
    let hw_tail = stats.hw_occupancy.mean_in_window(100.0, 120.0).unwrap();
    assert!(hw_tail > 200_000.0);
    assert_eq!(stats.stalls.total(), 0, "whole run smooth");
}

#[test]
fn three_failures_survived_with_four_replicas() {
    let servers = [S1, S2, S3, NodeId(4)];
    let mut builder = ScenarioBuilder::new(7);
    builder
        .network(LinkProfile::lan())
        .movie(movie(150), &servers)
        .server(S1)
        .server(S2)
        .server(S3)
        .server(NodeId(4))
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        // Kill servers one at a time; k=4 replicas tolerate k-1 failures.
        .crash_at(SimTime::from_secs(20), NodeId(4))
        .crash_at(SimTime::from_secs(40), S3)
        .crash_at(SimTime::from_secs(60), S2);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(90));
    assert_eq!(sim.owner_of(C1), Some(S1), "last replica standing serves");
    let stats = sim.client_stats(C1).unwrap();
    assert_eq!(
        stats.stalls.total(),
        0,
        "three consecutive failures survived"
    );
    assert!(stats.frames_received > 2400);
}

#[test]
fn no_takeover_baseline_starves_after_crash() {
    let (builder, crash_at, _) = {
        let (mut b, c, l) = presets::fig4_lan(8);
        b.config(VodConfig::paper_default().with_takeover(TakeoverPolicy::None));
        (b, c, l)
    };
    let mut sim = builder.build();
    sim.run_until(crash_at + Duration::from_secs(20));
    assert_eq!(sim.owner_of(C1), None, "nobody takes over");
    let stats = sim.client_stats(C1).unwrap();
    assert!(
        stats.stalls.total() > 100,
        "the single-server baseline freezes, stalls = {}",
        stats.stalls.total()
    );
}

#[test]
fn single_backup_baseline_survives_one_failure_not_two() {
    let mut builder = ScenarioBuilder::new(9);
    builder
        .network(LinkProfile::lan())
        .config(VodConfig::paper_default().with_takeover(TakeoverPolicy::SingleBackup))
        .movie(movie(150), &[S1, S2, S3])
        .server(S1)
        .server(S2)
        .server(S3)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .crash_at(SimTime::from_secs(20), S3)
        .crash_at(SimTime::from_secs(40), S2);
    let mut sim = builder.build();
    // First failure (S3 was serving): survived.
    sim.run_until(SimTime::from_secs(35));
    let stalls_after_first = sim.client_stats(C1).unwrap().stalls.total();
    assert_eq!(stalls_after_first, 0, "first failure is covered");
    // Second failure: the Tiger-like baseline gives up.
    sim.run_until(SimTime::from_secs(70));
    let stats = sim.client_stats(C1).unwrap();
    assert!(
        stats.stalls.total() > 100,
        "second failure must starve the baseline, stalls = {}",
        stats.stalls.total()
    );
}

#[test]
fn pause_and_resume_stop_and_restart_the_stream() {
    let mut builder = ScenarioBuilder::new(10);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .vcr_at(SimTime::from_secs(20), C1, VcrOp::Pause)
        .vcr_at(SimTime::from_secs(30), C1, VcrOp::Resume);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(22));
    let received_at_pause = sim.client_stats(C1).unwrap().frames_received;
    sim.run_until(SimTime::from_secs(29));
    let received_mid_pause = sim.client_stats(C1).unwrap().frames_received;
    assert!(
        received_mid_pause - received_at_pause < 30,
        "server kept transmitting through the pause: {} → {}",
        received_at_pause,
        received_mid_pause
    );
    sim.run_until(SimTime::from_secs(50));
    let stats = sim.client_stats(C1).unwrap();
    assert!(
        stats.frames_received > received_mid_pause + 400,
        "stream resumed"
    );
    assert_eq!(stats.stalls.total(), 0, "paused time is not a stall");
}

#[test]
fn seek_jumps_and_recovers_via_emergency() {
    let mut builder = ScenarioBuilder::new(11);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .vcr_at(SimTime::from_secs(20), C1, VcrOp::Seek(FrameNo(2700)));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(19));
    let emergencies_before = sim.client_stats(C1).unwrap().emergencies.total();
    sim.run_until(SimTime::from_secs(40));
    let stats = sim.client_stats(C1).unwrap();
    assert!(
        stats.emergencies.total() > emergencies_before,
        "random access triggers the emergency refill (§4.1)"
    );
    // The buffer recovers after the seek.
    let tail = stats.sw_occupancy.mean_in_window(32.0, 40.0).unwrap();
    assert!(tail > 5.0, "buffer refilled after seek, mean {tail}");
}

#[test]
fn stop_removes_the_session_everywhere() {
    let mut builder = ScenarioBuilder::new(12);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .vcr_at(SimTime::from_secs(15), C1, VcrOp::Stop);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(25));
    assert_eq!(sim.owner_of(C1), None, "session closed on every replica");
    let received_at_stop = sim.client_stats(C1).unwrap().frames_received;
    sim.run_until(SimTime::from_secs(35));
    let received_later = sim.client_stats(C1).unwrap().frames_received;
    assert!(
        received_later - received_at_stop < 10,
        "transmission ceased"
    );
}

/// A stop racing the serving replica's crash: the Stop command (and the
/// record removal it would have announced) dies with the server, so the
/// survivor's stale record resurrects the session for a client that
/// already quit. The client's departure from its session group on stop
/// must kill the zombie — the survivor installs a session view without
/// the client's node and ends the session instead of streaming to a
/// stopped client forever.
#[test]
fn stop_racing_server_crash_leaves_no_zombie_session() {
    let mut builder = ScenarioBuilder::new(21);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .vcr_at(SimTime::from_secs(15), C1, VcrOp::Stop);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(14));
    assert_eq!(sim.owner_of(C1), Some(S2), "highest id serves first");
    // The crash lands at the same instant as the stop: positive link
    // latency guarantees S2 is gone before the Stop arrives, and S1
    // only knows the stale record.
    sim.sim_mut().crash_at(SimTime::from_secs(15), S2);
    sim.run_until(SimTime::from_secs(25));
    assert_eq!(sim.owner_of(C1), None, "the resurrected session must die");
    let received = sim.client_stats(C1).unwrap().frames_received;
    sim.run_until(SimTime::from_secs(35));
    assert_eq!(
        sim.client_stats(C1).unwrap().frames_received,
        received,
        "a stopped client accepts nothing"
    );
}

#[test]
fn quality_capped_client_gets_all_i_frames_at_reduced_rate() {
    let mut builder = ScenarioBuilder::new(13);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client_with_cap(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2), 15);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(62));
    let stats = sim.client_stats(C1).unwrap();
    // 15 fps requested of a 30 fps movie → ~16 fps effective (8 of 15 per
    // GOP); over ~60 s that is ~960 frames, far less than the ~1800 of a
    // full-rate client.
    assert!(
        (700..1300).contains(&stats.frames_received),
        "reduced-rate stream out of band: {}",
        stats.frames_received
    );
    assert_eq!(stats.stalls.total(), 0);
}

#[test]
fn two_clients_distribute_across_replicas() {
    let c2 = ClientId(2);
    let mut builder = ScenarioBuilder::new(14);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .client(c2, NodeId(101), MovieId(1), SimTime::from_secs(3));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(20));
    let o1 = sim.owner_of(C1).expect("c1 served");
    let o2 = sim.owner_of(c2).expect("c2 served");
    assert_ne!(o1, o2, "two clients should land on different replicas");
    sim.run_until(SimTime::from_secs(60));
    for c in [C1, c2] {
        let stats = sim.client_stats(c).unwrap();
        assert_eq!(stats.stalls.total(), 0, "client {c} stalled");
        assert!(stats.frames_received > 1500);
    }
}

#[test]
fn client_crash_cleans_up_server_state() {
    let mut builder = ScenarioBuilder::new(15);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(15));
    assert!(sim.owner_of(C1).is_some());
    sim.sim_mut().crash_at(SimTime::from_secs(15), CLIENT_NODE);
    sim.run_until(SimTime::from_secs(25));
    assert_eq!(sim.owner_of(C1), None, "dead client's session was reaped");
}

#[test]
fn partitioned_server_is_replaced_and_merge_reconciles() {
    let mut builder = ScenarioBuilder::new(16);
    builder
        .network(LinkProfile::lan())
        .movie(movie(150), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2));
    // S2 serves; partition it away from both S1 and the client.
    builder.partition_at(SimTime::from_secs(20), &[S2], &[S1, CLIENT_NODE]);
    builder.heal_all_at(SimTime::from_secs(45));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(sim.owner_of(C1), Some(S1), "connected side takes over");
    sim.run_until(SimTime::from_secs(70));
    // After healing exactly one server transmits.
    let owner = sim.owner_of(C1);
    assert!(owner.is_some(), "client still served after merge");
    let stats = sim.client_stats(C1).unwrap();
    assert!(
        stats.stalls.total() < 150,
        "partition handled with at most a brief freeze, stalls = {}",
        stats.stalls.total()
    );
}

#[test]
fn sync_overhead_is_below_one_thousandth_of_video_bandwidth() {
    let mut sim = plain_scenario(17);
    sim.run_until(SimTime::from_secs(120));
    let video = sim.net_stats().class("video").sent_bytes;
    let sync = sim.net_stats().class("vod-sync").sent_bytes;
    assert!(video > 0);
    let ratio = sync as f64 / video as f64;
    // Paper §1: synchronization consumes "less than one thousandth of the
    // total communication bandwidth used by the VoD service". The GCS
    // carrier adds framing, so allow a small factor over the raw records.
    assert!(ratio < 0.004, "sync/video ratio {ratio}");
}

#[test]
fn runs_are_deterministic() {
    let run = |seed: u64| {
        let (builder, _, _) = presets::fig4_lan(seed);
        let mut sim = builder.build();
        sim.run_until(SimTime::from_secs(80));
        let stats = sim.client_stats(C1).unwrap();
        (
            stats.frames_received,
            stats.late.total(),
            stats.skipped.total(),
            stats.sw_occupancy.points().to_vec(),
        )
    };
    assert_eq!(run(42), run(42), "same seed, same run");
    // Divergence across seeds is best observed on the lossy WAN (a LAN
    // run is nearly seed-independent by design).
    let wan = |seed: u64| {
        let (builder, _, _) = presets::fig5_wan(seed);
        let mut sim = builder.build();
        sim.run_until(SimTime::from_secs(60));
        let stats = sim.client_stats(C1).unwrap();
        (
            stats.frames_received,
            stats.late.total(),
            stats.sw_occupancy.points().to_vec(),
        )
    };
    assert_ne!(wan(42), wan(43), "different seeds diverge");
}

#[test]
fn movie_end_is_signalled() {
    let mut builder = ScenarioBuilder::new(18);
    builder
        .network(LinkProfile::lan())
        .movie(movie(20), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(40));
    let node = CLIENT_NODE;
    let ended = sim
        .sim_mut()
        .with_process(node, |c: &ftvod_core::client::VodClient| c.ended())
        .unwrap();
    assert!(ended, "client learned the movie is over");
    assert_eq!(sim.owner_of(C1), None, "session closed at the end");
}

#[test]
fn graceful_shutdown_hands_over_without_detection_delay() {
    let mut builder = ScenarioBuilder::new(19);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        // Planned maintenance on the serving replica.
        .shutdown_at(SimTime::from_secs(20), S2);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(sim.owner_of(C1), Some(S1), "survivor serves after detach");
    let stats = sim.client_stats(C1).unwrap();
    assert_eq!(stats.stalls.total(), 0, "planned handoff is seamless");
    // Without a failure-detection wait, the interruption is shorter than a
    // crash takeover (well under the suspect timeout).
    let max_gap = stats
        .interruptions
        .iter()
        .filter(|&&(at, _)| at > 18.0)
        .map(|&(_, d)| d)
        .fold(0.0_f64, f64::max);
    assert!(
        max_gap < 0.45,
        "graceful handoff should beat failure detection, gap {max_gap}s"
    );
    // The detached process actually exited.
    sim.run_until(SimTime::from_secs(45));
    assert!(!sim.is_alive(S2), "server process should have exited");
}

#[test]
fn client_can_start_mid_movie() {
    let mut builder = ScenarioBuilder::new(20);
    builder
        .network(LinkProfile::lan())
        .movie(movie(120), &[S1, S2])
        .server(S1)
        .server(S2);
    builder.client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2));
    let mut sim = builder.build();
    // Drive a seek right after start to emulate "resume where I left off".
    sim.run_until(SimTime::from_secs(5));
    sim.sim_mut()
        .invoke(CLIENT_NODE, |c: &mut ftvod_core::client::VodClient, ctx| {
            c.seek(ctx, FrameNo(1800)); // minute one
        })
        .unwrap();
    sim.run_until(SimTime::from_secs(65));
    // 1800 frames of offset + ~58s of playback: the movie (3600 frames)
    // must end around t=62s.
    let ended = sim
        .sim_mut()
        .with_process(CLIENT_NODE, |c: &ftvod_core::client::VodClient| c.ended())
        .unwrap();
    assert!(ended, "mid-movie start reaches the end early");
}

#[test]
fn migration_of_a_paused_client_keeps_it_paused() {
    let (builder, crash_at, _) = {
        let (mut b, c, l) = presets::fig4_lan(21);
        b.vcr_at(c - Duration::from_secs(5), C1, VcrOp::Pause);
        b.vcr_at(c + Duration::from_secs(10), C1, VcrOp::Resume);
        (b, c, l)
    };
    let mut sim = builder.build();
    // The client pauses 5s before the crash; the takeover must not blast
    // frames at a paused viewer.
    sim.run_until(crash_at + Duration::from_secs(8));
    let received_while_paused = sim.client_stats(C1).unwrap().frames_received;
    sim.run_until(crash_at + Duration::from_secs(9));
    let still_paused = sim.client_stats(C1).unwrap().frames_received;
    assert!(
        still_paused - received_while_paused < 20,
        "new owner transmitted to a paused client"
    );
    // Resume works against the new owner.
    sim.run_until(crash_at + Duration::from_secs(25));
    let stats = sim.client_stats(C1).unwrap();
    assert!(
        stats.frames_received > still_paused + 300,
        "resume after migration restarts the stream"
    );
}

#[test]
fn client_recovers_after_losing_every_replica() {
    // Beyond the paper's k-1 assumption: all replicas die, a fresh one is
    // brought up later, and the client re-opens its session from where it
    // stopped.
    let mut builder = ScenarioBuilder::new(22);
    builder
        .network(LinkProfile::lan())
        .movie(movie(150), &[S1, S2, S3])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .crash_at(SimTime::from_secs(20), S2)
        .crash_at(SimTime::from_secs(21), S1)
        // Total outage 21s..35s, then a cold replica appears.
        .server_at(SimTime::from_secs(35), S3);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(30));
    let during_outage = sim.client_stats(C1).unwrap().frames_received;
    assert_eq!(sim.owner_of(C1), None, "everything is down");
    sim.run_until(SimTime::from_secs(60));
    assert_eq!(
        sim.owner_of(C1),
        Some(S3),
        "fresh replica adopted the client"
    );
    let stats = sim.client_stats(C1).unwrap();
    assert!(
        stats.frames_received > during_outage + 400,
        "stream resumed after the blackout"
    );
    // The re-open resumes from the client's position rather than frame 0:
    // no flood of ancient duplicates.
    assert!(
        stats.late.total() < 80,
        "resume position was honoured, late = {}",
        stats.late.total()
    );
}

#[test]
fn playback_speed_control_scales_the_stream() {
    // Paper §3 lists "speed control" among the client's control messages:
    // double speed doubles consumption (and hence transmission); slow
    // motion halves it.
    let mut builder = ScenarioBuilder::new(23);
    builder
        .network(LinkProfile::lan())
        .movie(movie(240), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .vcr_at(SimTime::from_secs(30), C1, VcrOp::SetSpeed(200))
        .vcr_at(SimTime::from_secs(60), C1, VcrOp::SetSpeed(50));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(28));
    let normal_start = sim.client_stats(C1).unwrap().frames_received;
    sim.run_until(SimTime::from_secs(38));
    // Skip the transition, then measure steady 2x.
    sim.run_until(SimTime::from_secs(48));
    let fast_start = sim.client_stats(C1).unwrap().frames_received;
    sim.run_until(SimTime::from_secs(58));
    let fast_rate = (sim.client_stats(C1).unwrap().frames_received - fast_start) as f64 / 10.0;
    sim.run_until(SimTime::from_secs(70));
    let slow_start = sim.client_stats(C1).unwrap().frames_received;
    sim.run_until(SimTime::from_secs(85));
    let slow_rate = (sim.client_stats(C1).unwrap().frames_received - slow_start) as f64 / 15.0;
    let normal_rate = normal_start as f64 / 26.0; // ~26 s of normal playback
    assert!(
        fast_rate > normal_rate * 1.6,
        "2x speed should nearly double the rate: {normal_rate:.1} -> {fast_rate:.1}"
    );
    assert!(
        slow_rate < normal_rate * 0.75,
        "slow motion should cut the rate: {normal_rate:.1} -> {slow_rate:.1}"
    );
    let stats = sim.client_stats(C1).unwrap();
    assert_eq!(stats.stalls.total(), 0, "speed changes stay smooth");
}

#[test]
fn admission_control_caps_sessions_and_admits_when_freed() {
    // Two servers, at most one session each; three viewers arrive.
    let mut builder = ScenarioBuilder::new(24);
    builder
        .network(LinkProfile::lan())
        .config(VodConfig::paper_default().with_session_cap(1))
        .movie(movie(150), &[S1, S2])
        .server(S1)
        .server(S2)
        .client(C1, CLIENT_NODE, MovieId(1), SimTime::from_secs(2))
        .client(ClientId(2), NodeId(101), MovieId(1), SimTime::from_secs(3))
        .client(ClientId(3), NodeId(102), MovieId(1), SimTime::from_secs(4))
        // The first viewer stops mid-movie, freeing a slot.
        .vcr_at(SimTime::from_secs(30), C1, VcrOp::Stop);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(25));
    let served: Vec<bool> = [C1, ClientId(2), ClientId(3)]
        .iter()
        .map(|&c| sim.owner_of(c).is_some())
        .collect();
    assert_eq!(
        served.iter().filter(|&&s| s).count(),
        2,
        "only two sessions fit: {served:?}"
    );
    assert!(!served[2], "the last arrival waits");
    let waiting_received = sim.client_stats(ClientId(3)).unwrap().frames_received;
    assert_eq!(waiting_received, 0, "no partial service while waiting");
    // After c1 stops, the waiting client's periodic re-open is admitted.
    sim.run_until(SimTime::from_secs(45));
    assert!(
        sim.owner_of(ClientId(3)).is_some(),
        "freed capacity admits the waiting viewer"
    );
    sim.run_until(SimTime::from_secs(70));
    let stats = sim.client_stats(ClientId(3)).unwrap();
    assert!(
        stats.frames_received > 600,
        "admitted viewer streams normally"
    );
}

#[test]
fn crash_with_admission_control_sheds_rather_than_overloads() {
    // Two servers with capacity two each, four viewers; one server dies.
    // Under admission control the survivor keeps two viewers smooth and
    // parks the others instead of degrading all four.
    let mut builder = ScenarioBuilder::new(25);
    builder
        .network(LinkProfile::lan())
        .config(VodConfig::paper_default().with_session_cap(2))
        .movie(movie(150), &[S1, S2])
        .server(S1)
        .server(S2);
    for c in 1..=4u32 {
        builder.client(
            ClientId(c),
            NodeId(100 + c),
            MovieId(1),
            SimTime::from_secs(2),
        );
    }
    builder.crash_at(SimTime::from_secs(20), S2);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(45));
    let served: Vec<ClientId> = (1..=4u32)
        .map(ClientId)
        .filter(|&c| sim.owner_of(c).is_some())
        .collect();
    assert_eq!(
        served.len(),
        2,
        "survivor respects its capacity: {served:?}"
    );
    for &c in &served {
        let stats = sim.client_stats(c).unwrap();
        // The survivors' viewers stay smooth after the takeover window.
        assert!(
            stats.stalls.in_window(30.0, 45.0) == 0,
            "served viewer {c} degraded"
        );
    }
}

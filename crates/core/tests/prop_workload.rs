//! Property-based tests for the fleet workload engine: the Zipf sampler's
//! determinism contract and its agreement with the popularity law.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ftvod_core::workload::{FleetPlan, FleetProfile, ZipfSampler};
use simnet::SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same catalog, same exponent: the sampler must emit the
    /// exact same rank sequence (the byte-determinism contract of the
    /// whole workload engine rests on this).
    #[test]
    fn zipf_sequences_are_seed_deterministic(
        n in 1usize..40,
        s in 0.0f64..2.0,
        seed in 0u64..1_000_000,
        draws in 1usize..300,
    ) {
        let zipf = ZipfSampler::new(n, s);
        let run = |seed: u64| -> Vec<usize> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..draws).map(|_| zipf.sample(&mut rng)).collect()
        };
        let a = run(seed);
        prop_assert_eq!(&a, &run(seed), "same seed must reproduce the sequence");
        prop_assert!(a.iter().all(|&rank| rank < n), "ranks stay in the catalog");
    }

    /// Empirical frequencies follow the popularity order: over a large
    /// sample, a rank whose model probability is clearly larger than
    /// another's must also be drawn more often.
    #[test]
    fn zipf_frequencies_follow_popularity_order(
        n in 2usize..12,
        s in 0.8f64..1.6,
        seed in 0u64..100_000,
    ) {
        let zipf = ZipfSampler::new(n, s);
        let mut rng = SimRng::seed_from_u64(seed);
        let draws = 20_000usize;
        let mut counts = vec![0u32; n];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Compare each rank against rank 0 (the clearest separation) and
        // against the model with a generous statistical tolerance.
        for k in 1..n {
            prop_assert!(
                counts[0] >= counts[k],
                "rank 0 ({}) must out-draw rank {k} ({})",
                counts[0],
                counts[k]
            );
            let expected = zipf.probability(k) * draws as f64;
            let observed = f64::from(counts[k]);
            // 6-sigma binomial band, floored for tiny expectations.
            let sigma = (expected.max(1.0)).sqrt();
            prop_assert!(
                (observed - expected).abs() < 6.0 * sigma + 10.0,
                "rank {k}: observed {observed}, expected {expected:.1}"
            );
        }
    }

    /// The full plan generator inherits the sampler's determinism: the
    /// per-movie demand histogram is a pure function of (profile, seed).
    #[test]
    fn plan_demand_is_seed_deterministic(
        clients in 1u32..120,
        movies in 1u32..10,
        seed in 0u64..1_000_000,
    ) {
        let mut profile = FleetProfile::small_fleet();
        profile.clients = clients;
        profile.catalog_size = movies;
        let demand = |seed: u64| -> BTreeMap<_, _> {
            FleetPlan::generate(&profile, seed).movie_demand()
        };
        let a = demand(seed);
        prop_assert_eq!(&a, &demand(seed));
        let total: u32 = a.values().sum();
        prop_assert_eq!(total, clients, "every session lands on some movie");
    }
}

//! Chaos-engine integration tests: crashed servers restart and rejoin,
//! faults that overlap partitions reconverge after the heal, and the
//! trace-driven safety oracle tells a healthy fleet from a broken one.

use std::time::Duration;

use ftvod_core::chaos::{ChaosPlan, ChaosProfile};
use ftvod_core::config::{ReplicationConfig, VodConfig};
use ftvod_core::oracle::{OracleConfig, OracleReport};
use ftvod_core::protocol::ClientId;
use ftvod_core::scenario::ScenarioBuilder;
use ftvod_core::server::VodServer;
use ftvod_core::trace::{VodEvent, DEFAULT_EVENT_CAPACITY};
use ftvod_core::workload::{fleet_builder, FleetProfile};
use media::{Movie, MovieId, MovieSpec};
use simnet::{LinkProfile, NodeId, SimTime};

fn two_hour_movie(id: u32) -> Movie {
    Movie::generate(
        MovieId(id),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(7200)),
    )
}

/// The tentpole end to end: a server crashes mid-service, its clients are
/// taken over by the survivor, and the *restarted* replacement rejoins the
/// server and movie groups and receives clients back through the
/// deterministic redistribution — proven by the trace (a `NodeRestarted`
/// event, a post-restart `SessionStarted` on the restarted node) and by
/// video frames flowing from the restarted node afterwards.
#[test]
fn restarted_server_rejoins_groups_and_serves_redistributed_clients() {
    let servers = [NodeId(1), NodeId(2)];
    let crash = SimTime::from_secs(10);
    let restart = SimTime::from_secs(20);
    let mut builder = ScenarioBuilder::new(11);
    builder
        .record_events(DEFAULT_EVENT_CAPACITY)
        .movie(two_hour_movie(1), &servers)
        .server(NodeId(1))
        .server(NodeId(2))
        .crash_at(crash, NodeId(1))
        .restart_at(restart, NodeId(1));
    for c in 1..=4u32 {
        builder.client(
            ClientId(c),
            NodeId(100 + c),
            MovieId(1),
            SimTime::from_secs_f64(1.0 + 0.2 * f64::from(c)),
        );
    }
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(40));

    // The restart is recorded, and the replacement is alive at the end.
    let (restarted_at, post_restart_session, post_restart_video) = sim
        .trace()
        .with_recorder(|rec| {
            let restarted_at = rec.events().find_map(|e| match e {
                VodEvent::NodeRestarted { at, node } if *node == NodeId(1) => Some(*at),
                _ => None,
            });
            let session = rec.events().any(|e| {
                matches!(e, VodEvent::SessionStarted { at, server, .. }
                    if *server == NodeId(1) && *at > restart)
            });
            let video = rec.events().any(|e| {
                matches!(e, VodEvent::NetDelivered { at, from, class, .. }
                    if *class == "video" && from.node == NodeId(1) && *at > restart)
            });
            (restarted_at, session, video)
        })
        .expect("recording was enabled");
    assert_eq!(restarted_at, Some(restart), "the restart must be traced");
    assert!(sim.is_alive(NodeId(1)), "the replacement must stay up");

    // It rejoined the movie group: both servers are in the view again,
    // and it holds the movie's content.
    let members = sim
        .sim_mut()
        .with_process(NodeId(1), |s: &VodServer| {
            s.movie_view(MovieId(1)).map(|v| v.members.clone())
        })
        .unwrap()
        .expect("the replacement must be back in the movie group");
    assert_eq!(members, vec![NodeId(1), NodeId(2)], "post-heal movie view");
    let held = sim
        .sim_mut()
        .with_process(NodeId(1), |s: &VodServer| s.movies_held())
        .unwrap();
    assert!(
        held.contains(&MovieId(1)),
        "the replacement re-holds movie 1"
    );

    // Redistribution handed clients back, and the replacement streams.
    assert!(
        post_restart_session,
        "a client must be (re)started on the restarted server"
    );
    assert!(
        post_restart_video,
        "video frames must flow from the restarted server"
    );
    let owned_by_1 = sim
        .sim_mut()
        .with_process(NodeId(1), |s: &VodServer| s.clients_owned().len())
        .unwrap();
    assert!(owned_by_1 > 0, "redistribution must hand clients back");

    // Safety held throughout: the oracle passes the whole trace.
    let report = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .unwrap();
    assert!(report.pass(), "{report}");
}

/// Regression for overlapping faults: a server crashes while a partition
/// is active, then the partition heals pairwise. The survivors must end in
/// one agreed view and every client must be owned by exactly one server —
/// the failure mode this pins down is a stale-view deadlock where the two
/// sides never re-merge after the heal.
#[test]
fn crash_during_partition_then_heal_reconverges_to_one_view() {
    let servers = [NodeId(1), NodeId(2), NodeId(3)];
    let mut builder = ScenarioBuilder::new(17);
    builder
        .record_events(DEFAULT_EVENT_CAPACITY)
        .movie(two_hour_movie(1), &servers)
        .server(NodeId(1))
        .server(NodeId(2))
        .server(NodeId(3))
        .partition_at(SimTime::from_secs(8), &[NodeId(3)], &[NodeId(1), NodeId(2)])
        .crash_at(SimTime::from_secs(10), NodeId(2))
        .heal_at(
            SimTime::from_secs(16),
            &[NodeId(3)],
            &[NodeId(1), NodeId(2)],
        );
    let clients: Vec<ClientId> = (1..=6).map(ClientId).collect();
    for &c in &clients {
        builder.client(
            c,
            NodeId(100 + c.0),
            MovieId(1),
            SimTime::from_secs_f64(1.0 + 0.2 * f64::from(c.0)),
        );
    }
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(40));

    // One view: both survivors agree the movie group is exactly {1, 3}.
    for node in [NodeId(1), NodeId(3)] {
        let members = sim
            .sim_mut()
            .with_process(node, |s: &VodServer| {
                s.movie_view(MovieId(1)).map(|v| v.members.clone())
            })
            .unwrap()
            .unwrap_or_else(|| panic!("{node} lost the movie group"));
        assert_eq!(
            members,
            vec![NodeId(1), NodeId(3)],
            "{node} must converge on the merged post-heal view"
        );
    }

    // Exactly one server per client: ownership is a partition of the
    // viewers, with no client claimed twice and none abandoned.
    let mut owners: Vec<(ClientId, NodeId)> = Vec::new();
    for &node in &servers {
        if !sim.is_alive(node) {
            continue;
        }
        let owned = sim
            .sim_mut()
            .with_process(node, |s: &VodServer| s.clients_owned())
            .unwrap();
        owners.extend(owned.into_iter().map(|c| (c, node)));
    }
    for &c in &clients {
        let claims: Vec<NodeId> = owners
            .iter()
            .filter(|&&(owned, _)| owned == c)
            .map(|&(_, n)| n)
            .collect();
        assert_eq!(
            claims.len(),
            1,
            "{c} must have exactly one server: {claims:?}"
        );
    }
    let report = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .unwrap();
    assert!(report.pass(), "{report}");
}

/// The oracle tells sick from healthy: the same seeded chaos campaign
/// passes all four invariants at the paper's 500 ms sync interval and
/// fails re-serve when state exchange is slowed to 20 s — crashed servers'
/// clients cannot be taken over in time without fresh sync records.
#[test]
fn oracle_flags_broken_sync_interval_and_passes_paper_default() {
    let run = |sync: Duration| {
        let mut profile = FleetProfile::small_fleet();
        profile.clients = 24;
        profile.catalog_size = 4;
        profile.initial_replicas = 2;
        profile.arrival_window = Duration::from_secs(15);
        let seed = 3;
        let (mut builder, _plan) =
            fleet_builder(&profile, seed, Some(ReplicationConfig::paper_default()));
        let mut cfg = VodConfig::paper_default()
            .with_sync_interval(sync)
            .with_dynamic_replication(ReplicationConfig::paper_default());
        if let Some(cap) = profile.sessions_per_server {
            cfg = cfg.with_session_cap(cap);
        }
        builder.config(cfg);
        let mut chaos_profile = ChaosProfile::default_campaign();
        chaos_profile.faults = 6;
        let chaos = ChaosPlan::generate(&chaos_profile, &profile.server_nodes(), seed);
        chaos.apply(&mut builder, &LinkProfile::lan());
        builder.record_events(1 << 20);
        let mut sim = builder.build();
        let end = SimTime::from_secs_f64(profile.run_until().as_secs_f64().max(75.0));
        sim.run_until(end);
        sim.trace()
            .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
            .expect("recording was enabled")
    };
    let healthy = run(Duration::from_millis(500));
    assert!(
        healthy.pass(),
        "paper-default campaign must pass: {healthy}"
    );
    let broken = run(Duration::from_secs(20));
    assert!(
        broken.reserved_after_fault.is_fail(),
        "a 20s sync interval must break timely re-serve: {broken}"
    );
    assert!(!broken.pass());
}

//! Property-based tests for the popularity forecast and the placement
//! policies: the determinism contract (same seed + same demand stream ⇒
//! byte-identical transition sequence and byte-identical placement
//! decisions) that keeps every server's election in lockstep.

use proptest::prelude::*;

use ftvod_core::forecast::FORECAST_STREAM;
use ftvod_core::{ForecastBank, MovieObservation, PlacementAction, PolicyKind, ReplicationConfig};
use media::MovieId;

/// One synthetic sync tick of fleet-wide demand for a small catalog.
#[derive(Clone, Debug)]
struct Tick {
    /// Per movie: (sessions, waiting, replicas).
    demand: Vec<(u32, u32, u32)>,
}

fn tick_strategy(movies: usize) -> impl Strategy<Value = Tick> {
    proptest::collection::vec((0u32..40, 0u32..12, 1u32..6), movies..movies + 1)
        .prop_map(|demand| Tick { demand })
}

/// Replays `ticks` through a fresh forecast bank and policy, recording
/// every transition and decision as one rendered line per movie-tick.
fn replay(seed: u64, kind: PolicyKind, ticks: &[Tick], live: u32) -> Vec<String> {
    let cfg = ReplicationConfig::paper_default();
    let mut bank = ForecastBank::new(seed);
    let mut policy = kind.build();
    let mut log = Vec::new();
    for tick in ticks {
        policy.begin_tick();
        // Feed phase first, exactly like the server's replica manager.
        for (i, &(sessions, waiting, replicas)) in tick.demand.iter().enumerate() {
            let movie = MovieId(1 + i as u32);
            bank.observe(movie, sessions + waiting, replicas, &cfg);
        }
        for (i, &(sessions, waiting, replicas)) in tick.demand.iter().enumerate() {
            let movie = MovieId(1 + i as u32);
            let obs = MovieObservation {
                movie,
                sessions,
                waiting,
                replicas,
                live,
            };
            let action = policy.decide(&obs, bank.get(movie), &cfg);
            let forecast = bank.get(movie).expect("observed this tick");
            log.push(format!(
                "m{} {} heat={} {:?}",
                movie.0,
                forecast.state().as_str(),
                forecast.heat(),
                action
            ));
            // Pretend this server always wins the election, so cooldown
            // bookkeeping is exercised deterministically too.
            if action != PlacementAction::Hold {
                policy.acted(movie, action, &cfg);
            }
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed + same demand stream ⇒ the transition sequence and the
    /// placement decisions are byte-identical across two independent
    /// replays, for every policy kind. This is the property the
    /// fleet-wide election correctness rests on: all servers feed the
    /// same aggregated demand and must reach the same verdicts.
    #[test]
    fn forecast_and_decisions_are_replay_deterministic(
        seed in 0u64..1_000_000,
        ticks in proptest::collection::vec(tick_strategy(3), 1..60),
        live in 2u32..8,
    ) {
        for kind in [PolicyKind::Reactive, PolicyKind::Predictive, PolicyKind::Hybrid] {
            let a = replay(seed, kind, &ticks, live);
            let b = replay(seed, kind, &ticks, live);
            prop_assert_eq!(
                a.join("\n"),
                b.join("\n"),
                "replay diverged for {:?}",
                kind
            );
        }
    }

    /// The shared bank stream: two banks with the same seed observing the
    /// same demand stay in lockstep even when one is fed extra movies —
    /// per-movie machines are independently seeded, so the *order* and
    /// *set* of other movies cannot perturb a movie's transitions.
    #[test]
    fn per_movie_transitions_ignore_the_rest_of_the_catalog(
        seed in 0u64..1_000_000,
        ticks in proptest::collection::vec(tick_strategy(4), 1..40),
    ) {
        let cfg = ReplicationConfig::paper_default();
        let target = MovieId(1);
        // Bank A sees the full catalog; bank B only the target movie.
        let mut full = ForecastBank::new(seed);
        let mut solo = ForecastBank::new(seed);
        for tick in &ticks {
            for (i, &(sessions, waiting, replicas)) in tick.demand.iter().enumerate() {
                let movie = MovieId(1 + i as u32);
                let state = full.observe(movie, sessions + waiting, replicas, &cfg);
                if movie == target {
                    let solo_state = solo.observe(movie, sessions + waiting, replicas, &cfg);
                    prop_assert_eq!(state, solo_state);
                }
            }
        }
        prop_assert_eq!(
            full.get(target).map(|f| f.heat()),
            solo.get(target).map(|f| f.heat())
        );
    }
}

/// The default forecast stream constant is pinned: changing it silently
/// would re-seed every per-movie machine and shift every fleet run.
#[test]
fn forecast_stream_constant_is_pinned() {
    assert_eq!(FORECAST_STREAM, 0x464f_5245_4341_5354);
}

//! Property-based tests for the chaos engine's determinism contract:
//! the same seed must reproduce the exact fault plan *and* the exact
//! campaign trace, byte for byte — the replay guarantee every failing
//! seed reported by `ftvod-cli chaos` rests on.

use std::time::Duration;

use proptest::prelude::*;

use ftvod_core::chaos::{ChaosPlan, ChaosProfile};
use ftvod_core::config::{ReplicationConfig, VodConfig};
use ftvod_core::workload::{fleet_builder, FleetProfile};
use simnet::{LinkProfile, NodeId, SimTime};

fn server_nodes(n: u32) -> Vec<NodeId> {
    (1..=n).map(NodeId).collect()
}

/// Builds and runs a small chaos campaign, returning the rendered plan
/// and the full event trace as JSON Lines.
fn campaign(seed: u64) -> (String, String) {
    let mut profile = FleetProfile::small_fleet();
    profile.clients = 8;
    profile.catalog_size = 2;
    profile.initial_replicas = 2;
    profile.arrival_window = Duration::from_secs(10);
    let (mut builder, _plan) =
        fleet_builder(&profile, seed, Some(ReplicationConfig::paper_default()));
    let mut cfg = VodConfig::paper_default()
        .with_sync_interval(Duration::from_millis(500))
        .with_dynamic_replication(ReplicationConfig::paper_default());
    if let Some(cap) = profile.sessions_per_server {
        cfg = cfg.with_session_cap(cap);
    }
    builder.config(cfg);
    let chaos = ChaosPlan::generate(
        &ChaosProfile::default_campaign(),
        &profile.server_nodes(),
        seed,
    );
    chaos.apply(&mut builder, &LinkProfile::lan());
    builder.record_events(1 << 20);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(45));
    let jsonl = sim.events_jsonl().expect("recording was enabled");
    (chaos.render(), jsonl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same servers, same profile: the generated plan must be
    /// byte-identical — fault kinds, victims, times and durations.
    #[test]
    fn chaos_plans_are_seed_deterministic(
        seed in 0u64..1_000_000,
        faults in 1u32..12,
        servers in 3u32..8,
    ) {
        let mut profile = ChaosProfile::default_campaign();
        profile.faults = faults;
        let nodes = server_nodes(servers);
        let a = ChaosPlan::generate(&profile, &nodes, seed);
        let b = ChaosPlan::generate(&profile, &nodes, seed);
        prop_assert_eq!(a.render(), b.render(), "same seed must reproduce the plan");
        prop_assert_eq!(a, b);
    }

    /// The survivability floor holds for every seed: at no instant does
    /// the plan crash the fleet below `min_up` live servers.
    #[test]
    fn chaos_plans_respect_the_survivability_floor(
        seed in 0u64..1_000_000,
        faults in 1u32..12,
    ) {
        let profile = ChaosProfile::default_campaign();
        let mut with_faults = profile.clone();
        with_faults.faults = faults;
        let nodes = server_nodes(4);
        let plan = ChaosPlan::generate(&with_faults, &nodes, seed);
        // Sweep the crash/restart intervals: the number of concurrently
        // down servers never exceeds fleet size minus the floor.
        let downs: Vec<(SimTime, SimTime)> = plan
            .faults
            .iter()
            .filter_map(|f| match f {
                ftvod_core::chaos::ChaosFault::CrashRestart { at, restart_at, .. } => {
                    Some((*at, *restart_at))
                }
                _ => None,
            })
            .collect();
        for &(start, _) in &downs {
            let concurrent = downs
                .iter()
                .filter(|&&(s, e)| s <= start && start < e)
                .count() as u32;
            prop_assert!(
                concurrent <= 4 - with_faults.min_up,
                "{concurrent} servers down at {start:?} violates min_up={}",
                with_faults.min_up
            );
        }
    }
}

proptest! {
    // Full campaigns are costly; a handful of cases is enough to catch
    // any nondeterminism in the sim/chaos/trace pipeline.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed ⇒ byte-identical campaign: the rendered plan *and* the
    /// complete JSONL event trace of two independent runs must match.
    #[test]
    fn chaos_campaigns_are_byte_deterministic(seed in 0u64..10_000) {
        let (plan_a, trace_a) = campaign(seed);
        let (plan_b, trace_b) = campaign(seed);
        prop_assert_eq!(plan_a, plan_b, "plan must be reproducible");
        prop_assert!(trace_a == trace_b, "trace must be byte-identical");
        prop_assert!(!trace_a.is_empty());
    }
}

/// Different seeds draw different campaigns (spot check, not a law: two
/// specific seeds could collide, these do not).
#[test]
fn distinct_seeds_draw_distinct_plans() {
    let profile = ChaosProfile::default_campaign();
    let nodes = server_nodes(4);
    let a = ChaosPlan::generate(&profile, &nodes, 1);
    let b = ChaosPlan::generate(&profile, &nodes, 2);
    assert_ne!(a.render(), b.render(), "seeds 1 and 2 must differ");
}

//! Property-based tests for the media model: movie generation statistics,
//! quality-filter invariants and decoder conservation.

use std::time::Duration;

use proptest::prelude::*;

use media::{
    DisplayOutcome, FrameMeta, FrameNo, GopPattern, HardwareDecoder, Movie, MovieId, MovieSpec,
    QualityFilter,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated movies stay within a few percent of the target bitrate
    /// and follow the GOP type pattern exactly.
    #[test]
    fn movie_statistics_hold(
        bitrate_kbps in 200u64..8_000,
        fps in 10u32..60,
        secs in 2u64..20,
        seed in 0u64..10_000,
    ) {
        let spec = MovieSpec {
            title: "prop".to_owned(),
            bitrate_bps: bitrate_kbps * 1000,
            fps,
            duration: Duration::from_secs(secs),
            gop: GopPattern::mpeg1(),
            seed,
            size_jitter: 0.2,
        };
        let movie = Movie::generate(MovieId(1), &spec);
        prop_assert_eq!(movie.frame_count(), secs * u64::from(fps));
        let err = (movie.measured_bitrate_bps() - (bitrate_kbps * 1000) as f64).abs()
            / (bitrate_kbps * 1000) as f64;
        // Short movies carry more sampling variance: allow O(1/√n) slack.
        let tolerance = 0.05 + 1.5 / (movie.frame_count() as f64).sqrt();
        prop_assert!(err < tolerance, "bitrate error {err} > {tolerance}");
        for i in 0..movie.frame_count() {
            let frame = movie.frame(FrameNo(i)).expect("in range");
            prop_assert_eq!(frame.ftype, movie.gop().type_at(FrameNo(i)));
            prop_assert!(frame.size >= 64);
        }
    }

    /// The quality filter always keeps I frames, never exceeds the GOP,
    /// and is monotone in the requested rate.
    #[test]
    fn quality_filter_invariants(movie_fps in 10u32..60, target in 1u32..70) {
        let gop = GopPattern::mpeg1();
        let filter = QualityFilter::new(&gop, movie_fps, target);
        for i in 0..30u64 {
            if gop.type_at(FrameNo(i)).is_intra() {
                prop_assert!(filter.should_send(FrameNo(i)), "dropped I frame {i}");
            }
        }
        prop_assert!(filter.kept_per_gop() >= 1);
        prop_assert!(filter.kept_per_gop() <= gop.len());
        if target < movie_fps {
            let next = QualityFilter::new(&gop, movie_fps, target + 1);
            prop_assert!(next.kept_per_gop() >= filter.kept_per_gop());
        }
    }

    /// Decoder conservation: bytes occupied always equal the queued frame
    /// sizes; displayed + queued == accepted pushes.
    #[test]
    fn decoder_conserves_frames(
        ops in prop::collection::vec((0u32..2, 100u32..20_000), 1..200),
        capacity in 20_000u64..500_000,
    ) {
        let mut decoder = HardwareDecoder::new(capacity);
        let mut accepted = 0u64;
        let mut queued_bytes = 0u64;
        let mut no = 0u64;
        for (op, size) in ops {
            if op == 0 {
                let frame = FrameMeta {
                    no: FrameNo(no),
                    ftype: media::FrameType::P,
                    size,
                };
                no += 1;
                if decoder.push(frame).is_ok() {
                    accepted += 1;
                    queued_bytes += u64::from(size);
                }
            } else if let DisplayOutcome::Displayed(f) = decoder.tick_display() {
                queued_bytes -= u64::from(f.size);
            }
            prop_assert_eq!(decoder.occupied(), queued_bytes);
            prop_assert!(decoder.occupied() <= capacity);
        }
        prop_assert_eq!(decoder.displayed() + decoder.queued_frames() as u64, accepted);
    }
}

//! Synthetic movies and the movie catalog.
//!
//! The paper streams real MPEG-1 files; the service logic, however, only
//! depends on each frame's *type* and *size*. [`Movie::generate`] produces a
//! deterministic synthetic frame sequence calibrated to a target bitrate,
//! with I frames several times larger than P/B frames — the statistics that
//! drive buffer occupancy and bandwidth in the experiments.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use simnet::SimRng;

use crate::frame::{FrameMeta, FrameNo, FrameType, GopPattern};

/// Identifier of a movie in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MovieId(pub u32);

impl fmt::Debug for MovieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MovieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for MovieId {
    fn from(raw: u32) -> Self {
        MovieId(raw)
    }
}

/// Parameters for generating a synthetic movie.
///
/// The default matches the paper's measurement setup: a ~1.4 Mbps, 30
/// frames-per-second MPEG stream.
#[derive(Clone, Debug, PartialEq)]
pub struct MovieSpec {
    /// Human-readable title.
    pub title: String,
    /// Target average bitrate, bits per second.
    pub bitrate_bps: u64,
    /// Frames per second.
    pub fps: u32,
    /// Total length of the movie.
    pub duration: Duration,
    /// GOP structure.
    pub gop: GopPattern,
    /// Seed for the per-frame size jitter.
    pub seed: u64,
    /// Relative size jitter (0.2 = ±20 %).
    pub size_jitter: f64,
}

impl MovieSpec {
    /// The paper's stream: 1.4 Mbps, 30 fps, MPEG-1 GOP, 2 minutes long.
    pub fn paper_default() -> Self {
        MovieSpec {
            title: "paper-stream".to_owned(),
            bitrate_bps: 1_400_000,
            fps: 30,
            duration: Duration::from_secs(120),
            gop: GopPattern::mpeg1(),
            seed: 1,
            size_jitter: 0.2,
        }
    }

    /// Returns a copy with a different duration.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Returns a copy with a different title.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = title.to_owned();
        self
    }

    /// Returns a copy with a different seed (gives a different movie with
    /// the same statistics).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Relative encoded-size weight of each frame type (I frames are several
/// times larger than incremental frames).
fn type_weight(ftype: FrameType) -> f64 {
    match ftype {
        FrameType::I => 6.0,
        FrameType::P => 2.5,
        FrameType::B => 1.0,
    }
}

/// A fully generated movie: an immutable sequence of frame metadata.
#[derive(Clone, PartialEq)]
pub struct Movie {
    id: MovieId,
    title: String,
    fps: u32,
    frames: Vec<FrameMeta>,
    gop: GopPattern,
    target_bitrate_bps: u64,
}

impl Movie {
    /// Generates a deterministic synthetic movie from `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero fps or zero duration.
    pub fn generate(id: MovieId, spec: &MovieSpec) -> Self {
        assert!(spec.fps > 0, "fps must be positive");
        let frame_count = (spec.duration.as_secs_f64() * spec.fps as f64).round() as u64;
        assert!(frame_count > 0, "movie must contain at least one frame");
        let mut rng = SimRng::seed_from_u64(spec.seed ^ (id.0 as u64) << 32);
        // Calibrate: mean frame size must equal bitrate / (8 * fps).
        let mean_size = spec.bitrate_bps as f64 / 8.0 / spec.fps as f64;
        let gop_len = spec.gop.len() as u64;
        let weight_sum: f64 = (0..gop_len)
            .map(|i| type_weight(spec.gop.type_at(FrameNo(i))))
            .sum();
        let unit = mean_size * gop_len as f64 / weight_sum;
        let frames = (0..frame_count)
            .map(|i| {
                let no = FrameNo(i);
                let ftype = spec.gop.type_at(no);
                let jitter = 1.0 + spec.size_jitter * (rng.gen_f64() * 2.0 - 1.0);
                let size = (unit * type_weight(ftype) * jitter).max(64.0) as u32;
                FrameMeta { no, ftype, size }
            })
            .collect();
        Movie {
            id,
            title: spec.title.clone(),
            fps: spec.fps,
            frames,
            gop: spec.gop.clone(),
            target_bitrate_bps: spec.bitrate_bps,
        }
    }

    /// Catalog identifier.
    pub fn id(&self) -> MovieId {
        self.id
    }

    /// Human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Frames per second at full quality.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Time between consecutive frames at full quality.
    pub fn frame_interval(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.fps as f64)
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Movie length.
    pub fn duration(&self) -> Duration {
        Duration::from_secs_f64(self.frame_count() as f64 / self.fps as f64)
    }

    /// The GOP structure the movie was encoded with.
    pub fn gop(&self) -> &GopPattern {
        &self.gop
    }

    /// Metadata of frame `no`, or `None` past the end of the movie.
    pub fn frame(&self, no: FrameNo) -> Option<FrameMeta> {
        self.frames.get(no.0 as usize).copied()
    }

    /// Average frame size in bytes.
    pub fn mean_frame_size(&self) -> f64 {
        let total: u64 = self.frames.iter().map(|f| f.size as u64).sum();
        total as f64 / self.frames.len() as f64
    }

    /// Actual average bitrate of the generated stream, bits per second.
    pub fn measured_bitrate_bps(&self) -> f64 {
        self.mean_frame_size() * 8.0 * self.fps as f64
    }

    /// The bitrate the generator was asked for.
    pub fn target_bitrate_bps(&self) -> u64 {
        self.target_bitrate_bps
    }
}

impl fmt::Debug for Movie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Movie")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("fps", &self.fps)
            .field("frames", &self.frames.len())
            .finish()
    }
}

/// The set of movies offered by a VoD deployment.
///
/// Movies are shared via [`Arc`]: every replica server holds the same
/// immutable data (the paper assumes a separate replication mechanism for
/// the video material; see DESIGN.md).
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    movies: BTreeMap<MovieId, Arc<Movie>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces) a movie, returning the catalog for chaining.
    pub fn add(&mut self, movie: Movie) -> &mut Self {
        self.movies.insert(movie.id(), Arc::new(movie));
        self
    }

    /// Looks up a movie by id.
    pub fn get(&self, id: MovieId) -> Option<&Arc<Movie>> {
        self.movies.get(&id)
    }

    /// Ids of all offered movies, in order.
    pub fn ids(&self) -> Vec<MovieId> {
        self.movies.keys().copied().collect()
    }

    /// Number of movies offered.
    pub fn len(&self) -> usize {
        self.movies.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.movies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_bitrate_close_to_target() {
        let movie = Movie::generate(MovieId(1), &MovieSpec::paper_default());
        let measured = movie.measured_bitrate_bps();
        let target = 1_400_000.0;
        assert!(
            (measured - target).abs() / target < 0.05,
            "measured {measured} too far from target {target}"
        );
    }

    #[test]
    fn frame_count_matches_duration() {
        let spec = MovieSpec::paper_default().with_duration(Duration::from_secs(10));
        let movie = Movie::generate(MovieId(2), &spec);
        assert_eq!(movie.frame_count(), 300);
        assert_eq!(movie.duration(), Duration::from_secs(10));
        assert_eq!(movie.frame_interval(), Duration::from_secs_f64(1.0 / 30.0));
    }

    #[test]
    fn i_frames_are_larger() {
        let movie = Movie::generate(MovieId(3), &MovieSpec::paper_default());
        let mean = |t: FrameType| {
            let sizes: Vec<u64> = (0..movie.frame_count())
                .filter_map(|i| movie.frame(FrameNo(i)))
                .filter(|f| f.ftype == t)
                .map(|f| f.size as u64)
                .collect();
            sizes.iter().sum::<u64>() as f64 / sizes.len() as f64
        };
        assert!(mean(FrameType::I) > 2.0 * mean(FrameType::P));
        assert!(mean(FrameType::P) > 1.5 * mean(FrameType::B));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = MovieSpec::paper_default();
        let a = Movie::generate(MovieId(1), &spec);
        let b = Movie::generate(MovieId(1), &spec);
        assert_eq!(a, b);
        let c = Movie::generate(MovieId(1), &spec.clone().with_seed(9));
        assert_ne!(a, c);
    }

    #[test]
    fn out_of_range_frame_is_none() {
        let spec = MovieSpec::paper_default().with_duration(Duration::from_secs(1));
        let movie = Movie::generate(MovieId(1), &spec);
        assert!(movie.frame(FrameNo(29)).is_some());
        assert!(movie.frame(FrameNo(30)).is_none());
    }

    #[test]
    fn catalog_roundtrip() {
        let mut catalog = Catalog::new();
        assert!(catalog.is_empty());
        let spec = MovieSpec::paper_default().with_duration(Duration::from_secs(1));
        catalog.add(Movie::generate(MovieId(1), &spec));
        catalog.add(Movie::generate(
            MovieId(7),
            &spec.clone().with_title("other"),
        ));
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.ids(), vec![MovieId(1), MovieId(7)]);
        assert_eq!(catalog.get(MovieId(7)).unwrap().title(), "other");
        assert!(catalog.get(MovieId(9)).is_none());
    }
}

//! # media — MPEG-like media model
//!
//! The paper streams real MPEG-1 movies decoded by Optibase hardware; the
//! VoD service logic only depends on frame *types*, *sizes* and *timing*,
//! all of which this crate models:
//!
//! * [`FrameType`], [`FrameMeta`], [`GopPattern`] — the I/P/B structure of
//!   an MPEG stream;
//! * [`Movie`], [`MovieSpec`], [`Catalog`] — deterministic synthetic movies
//!   calibrated to a target bitrate (default: the paper's 1.4 Mbps / 30 fps
//!   stream) and the catalog replicas serve from;
//! * [`HardwareDecoder`] — the client's decoder input buffer: byte-bounded,
//!   FIFO, one frame consumed per display tick, stalling when empty;
//! * [`QualityFilter`] — the §4.3 quality-adaptation policy (keep all I
//!   frames, thin incremental frames to the client's capability).
//!
//! # Examples
//!
//! ```
//! use media::{Movie, MovieId, MovieSpec};
//!
//! let movie = Movie::generate(MovieId(1), &MovieSpec::paper_default());
//! assert_eq!(movie.fps(), 30);
//! // The synthetic stream hits the paper's 1.4 Mbps within a few percent.
//! let err = (movie.measured_bitrate_bps() - 1.4e6).abs() / 1.4e6;
//! assert!(err < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod decoder;
mod frame;
mod movie;
mod quality;

pub use decoder::{DecoderFullError, DisplayOutcome, HardwareDecoder};
pub use frame::{FrameMeta, FrameNo, FrameType, GopPattern};
pub use movie::{Catalog, Movie, MovieId, MovieSpec};
pub use quality::QualityFilter;

//! Video frames: types, metadata and GOP (group-of-pictures) patterns.

use std::fmt;

/// MPEG frame type.
///
/// `I` (intra) frames carry a full image; `P` and `B` frames are
/// incremental and cannot be decoded without the I frame that anchors their
/// GOP. The VoD service never inspects pixel data, but several of its
/// policies depend on the distinction (paper §3, §4.3): buffer overflow
/// discards incremental frames before I frames, and quality adaptation
/// always transmits the I frames.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FrameType {
    /// Intra frame: a full image.
    I,
    /// Predicted frame: forward-incremental.
    P,
    /// Bidirectional frame: incremental against both neighbours.
    B,
}

impl FrameType {
    /// Whether this frame carries a full image.
    pub fn is_intra(self) -> bool {
        self == FrameType::I
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            FrameType::I => 'I',
            FrameType::P => 'P',
            FrameType::B => 'B',
        };
        write!(f, "{c}")
    }
}

/// Position of a frame within a movie (0-based display order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameNo(pub u64);

impl FrameNo {
    /// The first frame of a movie.
    pub const ZERO: FrameNo = FrameNo(0);

    /// The frame `n` positions later.
    pub fn plus(self, n: u64) -> FrameNo {
        FrameNo(self.0 + n)
    }
}

impl fmt::Debug for FrameNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FrameNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for FrameNo {
    fn from(raw: u64) -> Self {
        FrameNo(raw)
    }
}

/// Metadata of one encoded frame (the simulation's stand-in for the actual
/// bitstream).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameMeta {
    /// Display-order position in the movie.
    pub no: FrameNo,
    /// Frame type.
    pub ftype: FrameType,
    /// Encoded size in bytes.
    pub size: u32,
}

/// A repeating GOP structure, e.g. `IBBPBBPBBPBBPBB`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GopPattern {
    types: Vec<FrameType>,
}

impl GopPattern {
    /// The common MPEG-1 pattern used throughout the experiments: one I
    /// frame anchoring 15 frames (half a second at 30 fps).
    pub fn mpeg1() -> Self {
        GopPattern::from_str_pattern("IBBPBBPBBPBBPBB").expect("static pattern is valid")
    }

    /// Parses a pattern from characters `I`, `P`, `B`.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is empty, does not start with `I`, or
    /// contains other characters.
    pub fn from_str_pattern(pattern: &str) -> Option<Self> {
        if pattern.is_empty() || !pattern.starts_with('I') {
            return None;
        }
        let types: Option<Vec<FrameType>> = pattern
            .chars()
            .map(|c| match c {
                'I' => Some(FrameType::I),
                'P' => Some(FrameType::P),
                'B' => Some(FrameType::B),
                _ => None,
            })
            .collect();
        types.map(|types| GopPattern { types })
    }

    /// Number of frames in one GOP.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the pattern is empty (never true for constructed patterns).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The frame type at display position `no` of the movie.
    pub fn type_at(&self, no: FrameNo) -> FrameType {
        self.types[(no.0 % self.types.len() as u64) as usize]
    }

    /// Number of I frames per GOP (always ≥ 1).
    pub fn intra_per_gop(&self) -> usize {
        self.types.iter().filter(|t| t.is_intra()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpeg1_pattern_shape() {
        let gop = GopPattern::mpeg1();
        assert_eq!(gop.len(), 15);
        assert_eq!(gop.intra_per_gop(), 1);
        assert_eq!(gop.type_at(FrameNo(0)), FrameType::I);
        assert_eq!(gop.type_at(FrameNo(15)), FrameType::I);
        assert_eq!(gop.type_at(FrameNo(1)), FrameType::B);
        assert_eq!(gop.type_at(FrameNo(3)), FrameType::P);
    }

    #[test]
    fn pattern_parsing_validates() {
        assert!(GopPattern::from_str_pattern("").is_none());
        assert!(GopPattern::from_str_pattern("PBB").is_none());
        assert!(GopPattern::from_str_pattern("IXB").is_none());
        let g = GopPattern::from_str_pattern("IPPP").unwrap();
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn intra_detection() {
        assert!(FrameType::I.is_intra());
        assert!(!FrameType::P.is_intra());
        assert!(!FrameType::B.is_intra());
    }

    #[test]
    fn frame_no_arithmetic() {
        assert_eq!(FrameNo::ZERO.plus(5), FrameNo(5));
        assert!(FrameNo(4) < FrameNo(5));
        assert_eq!(FrameNo::from(9).to_string(), "9");
    }
}

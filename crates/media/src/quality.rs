//! Quality adaptation: selecting which frames to transmit for clients that
//! cannot process the full frame rate (paper §4.3).
//!
//! When a client requests lower quality, the server "starts skipping
//! frames, transmitting all the I (full image) frames, and some of the
//! other frames, as the capabilities allow". [`QualityFilter`] implements
//! that policy deterministically: every I frame is kept, and within each
//! GOP the incremental frames are thinned out with even spacing to hit the
//! target rate.

use crate::frame::{FrameNo, GopPattern};

/// Deterministic frame-selection filter for a reduced target frame rate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QualityFilter {
    gop_len: u64,
    /// Per-GOP bitmask: `keep[i]` is whether position `i` of each GOP is
    /// transmitted.
    keep: Vec<bool>,
}

impl QualityFilter {
    /// Builds a filter that thins `gop`-structured video from `movie_fps`
    /// down to approximately `target_fps`.
    ///
    /// I frames are always kept, so the effective floor on the delivered
    /// rate is the I-frame rate (2 fps for the MPEG-1 GOP at 30 fps).
    ///
    /// # Panics
    ///
    /// Panics if `movie_fps` is zero.
    pub fn new(gop: &GopPattern, movie_fps: u32, target_fps: u32) -> Self {
        assert!(movie_fps > 0, "movie fps must be positive");
        let gop_len = gop.len() as u64;
        if target_fps >= movie_fps {
            return QualityFilter {
                gop_len,
                keep: vec![true; gop.len()],
            };
        }
        let mut keep = vec![false; gop.len()];
        let non_intra: Vec<usize> = (0..gop.len())
            .filter(|&i| {
                let intra = gop.type_at(FrameNo(i as u64)).is_intra();
                if intra {
                    keep[i] = true;
                }
                !intra
            })
            .collect();
        // Frames to keep per GOP to hit the target rate.
        let want =
            ((gop.len() as f64) * f64::from(target_fps) / f64::from(movie_fps)).round() as usize;
        let extra = want.saturating_sub(gop.intra_per_gop());
        let extra = extra.min(non_intra.len());
        // Evenly spaced selection among the incremental frames.
        for k in 0..extra {
            let idx = non_intra[k * non_intra.len() / extra.max(1)];
            keep[idx] = true;
        }
        QualityFilter { gop_len, keep }
    }

    /// Whether frame `no` of the movie should be transmitted.
    pub fn should_send(&self, no: FrameNo) -> bool {
        self.keep[(no.0 % self.gop_len) as usize]
    }

    /// Number of frames transmitted per GOP.
    pub fn kept_per_gop(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Effective delivered frame rate for a movie at `movie_fps`.
    pub fn effective_fps(&self, movie_fps: u32) -> f64 {
        f64::from(movie_fps) * self.kept_per_gop() as f64 / self.gop_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::GopPattern;

    #[test]
    fn full_rate_keeps_everything() {
        let gop = GopPattern::mpeg1();
        let filter = QualityFilter::new(&gop, 30, 30);
        assert_eq!(filter.kept_per_gop(), 15);
        let filter = QualityFilter::new(&gop, 30, 60);
        assert_eq!(filter.kept_per_gop(), 15);
    }

    #[test]
    fn half_rate_keeps_half() {
        let gop = GopPattern::mpeg1();
        let filter = QualityFilter::new(&gop, 30, 15);
        assert_eq!(filter.kept_per_gop(), 8, "15 fps of 30 = 7.5 → 8 per GOP");
        assert!((filter.effective_fps(30) - 16.0).abs() < 0.5);
    }

    #[test]
    fn i_frames_always_survive() {
        let gop = GopPattern::mpeg1();
        for target in [1, 2, 5, 10, 20, 29] {
            let filter = QualityFilter::new(&gop, 30, target);
            for i in 0..45u64 {
                if gop.type_at(FrameNo(i)).is_intra() {
                    assert!(
                        filter.should_send(FrameNo(i)),
                        "I frame {i} dropped at target {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn extreme_reduction_floors_at_i_rate() {
        let gop = GopPattern::mpeg1();
        let filter = QualityFilter::new(&gop, 30, 1);
        assert_eq!(filter.kept_per_gop(), 1, "only the I frame remains");
        assert!((filter.effective_fps(30) - 2.0).abs() < 0.01);
    }

    #[test]
    fn selection_is_periodic() {
        let gop = GopPattern::mpeg1();
        let filter = QualityFilter::new(&gop, 30, 10);
        for i in 0..15u64 {
            assert_eq!(
                filter.should_send(FrameNo(i)),
                filter.should_send(FrameNo(i + 15))
            );
        }
    }

    #[test]
    fn monotone_in_target() {
        // A higher target rate never keeps fewer frames.
        let gop = GopPattern::mpeg1();
        let mut prev = 0;
        for target in 1..=30 {
            let kept = QualityFilter::new(&gop, 30, target).kept_per_gop();
            assert!(kept >= prev, "target {target}: kept {kept} < prev {prev}");
            prev = kept;
        }
    }
}

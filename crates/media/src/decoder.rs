//! Model of the client's hardware MPEG decoder.
//!
//! The paper's clients use Optibase hardware decoders with a byte-capacity
//! input buffer (240 KB ≈ 1.2 s of a 1.4 Mbps stream). The software layer
//! streams frames into the decoder whenever there is space; the decoder
//! consumes one frame per display tick and freezes the picture (a *stall*)
//! when its buffer runs dry.

use std::collections::VecDeque;

use crate::frame::{FrameMeta, FrameNo};

/// Outcome of one display tick.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DisplayOutcome {
    /// A frame was consumed and shown.
    Displayed(FrameMeta),
    /// The buffer was empty; the viewer sees a frozen picture.
    Stalled,
}

/// Error returned by [`HardwareDecoder::push`] when the frame does not fit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecoderFullError {
    /// Bytes currently free in the decoder buffer.
    pub free: u64,
    /// Size of the rejected frame.
    pub frame_size: u32,
}

impl std::fmt::Display for DecoderFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decoder buffer full: {} bytes free, frame needs {}",
            self.free, self.frame_size
        )
    }
}

impl std::error::Error for DecoderFullError {}

/// A byte-bounded FIFO decoder buffer with per-tick consumption.
#[derive(Clone, Debug)]
pub struct HardwareDecoder {
    capacity: u64,
    occupied: u64,
    queue: VecDeque<FrameMeta>,
    displayed: u64,
    stalls: u64,
    last_displayed: Option<FrameNo>,
}

impl HardwareDecoder {
    /// Creates a decoder with `capacity` bytes of input buffering.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "decoder capacity must be positive");
        HardwareDecoder {
            capacity,
            occupied: 0,
            queue: VecDeque::new(),
            displayed: 0,
            stalls: 0,
            last_displayed: None,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.occupied
    }

    /// Number of frames currently buffered.
    pub fn queued_frames(&self) -> usize {
        self.queue.len()
    }

    /// Whether `frame` would fit right now.
    pub fn fits(&self, frame: &FrameMeta) -> bool {
        u64::from(frame.size) <= self.free()
    }

    /// Queues a frame for display.
    ///
    /// # Errors
    ///
    /// Returns [`DecoderFullError`] when the frame does not fit; the caller
    /// (the client's software buffer) retries later.
    pub fn push(&mut self, frame: FrameMeta) -> Result<(), DecoderFullError> {
        if !self.fits(&frame) {
            return Err(DecoderFullError {
                free: self.free(),
                frame_size: frame.size,
            });
        }
        self.occupied += u64::from(frame.size);
        self.queue.push_back(frame);
        Ok(())
    }

    /// Consumes one display tick: shows the next frame or stalls.
    pub fn tick_display(&mut self) -> DisplayOutcome {
        match self.queue.pop_front() {
            Some(frame) => {
                self.occupied -= u64::from(frame.size);
                self.displayed += 1;
                self.last_displayed = Some(frame.no);
                DisplayOutcome::Displayed(frame)
            }
            None => {
                self.stalls += 1;
                DisplayOutcome::Stalled
            }
        }
    }

    /// Total frames displayed so far.
    pub fn displayed(&self) -> u64 {
        self.displayed
    }

    /// Total stalled ticks so far (visible jitter to the human observer).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Display-order position of the most recently shown frame.
    pub fn last_displayed(&self) -> Option<FrameNo> {
        self.last_displayed
    }

    /// Highest frame number queued or displayed; the software buffer uses
    /// this to classify arrivals as *late*.
    pub fn frontier(&self) -> Option<FrameNo> {
        self.queue.back().map(|f| f.no).or(self.last_displayed)
    }

    /// Empties the buffer (used on VCR seek operations).
    pub fn flush(&mut self) {
        self.queue.clear();
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;

    fn frame(no: u64, size: u32) -> FrameMeta {
        FrameMeta {
            no: FrameNo(no),
            ftype: FrameType::P,
            size,
        }
    }

    #[test]
    fn push_and_display_in_order() {
        let mut dec = HardwareDecoder::new(1000);
        dec.push(frame(0, 300)).unwrap();
        dec.push(frame(1, 300)).unwrap();
        assert_eq!(dec.occupied(), 600);
        assert_eq!(dec.queued_frames(), 2);
        match dec.tick_display() {
            DisplayOutcome::Displayed(f) => assert_eq!(f.no, FrameNo(0)),
            DisplayOutcome::Stalled => panic!("should display"),
        }
        assert_eq!(dec.occupied(), 300);
        assert_eq!(dec.last_displayed(), Some(FrameNo(0)));
    }

    #[test]
    fn overfull_push_is_rejected() {
        let mut dec = HardwareDecoder::new(500);
        dec.push(frame(0, 400)).unwrap();
        let err = dec.push(frame(1, 200)).unwrap_err();
        assert_eq!(err.free, 100);
        assert_eq!(err.frame_size, 200);
        assert!(!dec.fits(&frame(1, 200)));
        assert!(dec.fits(&frame(1, 100)));
    }

    #[test]
    fn empty_buffer_stalls() {
        let mut dec = HardwareDecoder::new(100);
        assert_eq!(dec.tick_display(), DisplayOutcome::Stalled);
        assert_eq!(dec.stalls(), 1);
        assert_eq!(dec.displayed(), 0);
    }

    #[test]
    fn frontier_tracks_progress() {
        let mut dec = HardwareDecoder::new(1000);
        assert_eq!(dec.frontier(), None);
        dec.push(frame(5, 100)).unwrap();
        dec.push(frame(6, 100)).unwrap();
        assert_eq!(dec.frontier(), Some(FrameNo(6)));
        dec.tick_display();
        dec.tick_display();
        assert_eq!(dec.frontier(), Some(FrameNo(6)), "remembers after drain");
    }

    #[test]
    fn flush_empties() {
        let mut dec = HardwareDecoder::new(1000);
        dec.push(frame(0, 100)).unwrap();
        dec.flush();
        assert_eq!(dec.occupied(), 0);
        assert_eq!(dec.queued_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = HardwareDecoder::new(0);
    }
}

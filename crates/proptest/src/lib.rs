//! In-repo property-testing shim.
//!
//! This workspace builds in hermetic containers with no cargo registry
//! access, so the real `proptest` crate cannot be resolved. This crate
//! provides the (small) subset of its API that the workspace's property
//! tests actually use — the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, integer / float range strategies, tuples,
//! `prop_map`, `any::<bool>()` and `prop::collection::{vec, btree_set}` —
//! backed by a deterministic splitmix64 generator.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index; cases are
//!   derived deterministically from the test name, so a failure is
//!   reproducible by re-running the test.
//! * **Deterministic seeding.** Upstream seeds from OS entropy; here every
//!   case's inputs are a pure function of (test path, case index), which
//!   keeps tier-1 runs byte-stable.

/// Test-runner types: configuration, case errors and the deterministic
/// generator handed to strategies.
pub mod test_runner {
    use std::fmt;

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (carried out of the case body).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case `case` of the property named `name`; the
        /// stream is a pure function of both.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test name, mixed with the
            // case index so every case draws an independent stream.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                let low = m as u64;
                if low >= bound || low >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and built-in strategies.
pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_inclusive_strategy!(u8, u16, u32, usize);

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range");
            // Treat the inclusive float range as half-open; the missing
            // single point has measure zero.
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets whose size lies in `size` (best effort when the
    /// element space is nearly exhausted).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `any::<T>()` support for the types the workspace samples "arbitrarily".
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a property test needs in one import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the upstream `prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests.
///
/// Supported grammar (a strict subset of upstream):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(
///         xs in prop::collection::vec(0u32..10, 1..50),
///         flag in any::<bool>(),
///     ) {
///         prop_assert!(xs.len() < 50);
///     }
/// }
/// ```
///
/// Note: every `name in strategy` binding must end with a comma (the style
/// rustfmt produces).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                #[allow(clippy::redundant_closure_call)]
                let __result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__e) = __result {
                    ::core::panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: {:?} != {:?}",
            ::std::format!($($fmt)*),
            __l,
            __r
        );
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: both sides equal {:?}",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}: both sides equal {:?}",
            ::std::format!($($fmt)*),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 4);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in 3u64..17,
            y in 0.25f64..0.75,
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(u8::from(flag) < 2);
        }

        #[test]
        fn collections_respect_sizes(
            xs in prop::collection::vec((0u32..5, any::<bool>()), 2..9,),
            set in prop::collection::btree_set(0u32..1000, 1..6,),
        ) {
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert!((1..6).contains(&set.len()));
            prop_assert!(xs.iter().all(|&(v, _)| v < 5));
        }

        #[test]
        fn prop_map_applies(
            doubled in (0u32..10).prop_map(|v| v * 2),
        ) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20, "doubled = {}", doubled);
        }
    }
}

//! Dynamic load balancing: a new server is brought up on the fly and
//! absorbs clients from the loaded replicas (paper §1, §5.2).
//!
//! Six clients watch the same movie from two replicas; a third replica is
//! brought up mid-run. The deterministic redistribution evens out the load
//! without interrupting anyone's movie.
//!
//! ```text
//! cargo run --example load_balancing
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use ftvod::prelude::*;

fn main() {
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(120)),
    );
    let (s1, s2, s3) = (NodeId(1), NodeId(2), NodeId(3));
    let clients: Vec<ClientId> = (1..=6).map(ClientId).collect();

    let mut builder = ScenarioBuilder::new(5);
    builder
        .network(LinkProfile::lan())
        .movie(movie, &[s1, s2, s3])
        .server(s1)
        .server(s2)
        .server_at(SimTime::from_secs(30), s3);
    for (i, &c) in clients.iter().enumerate() {
        builder.client(
            c,
            NodeId(100 + c.0),
            MovieId(1),
            SimTime::from_secs(2 + i as u64),
        );
    }
    let mut sim = builder.build();

    let print_distribution = |sim: &VodSim, label: &str| {
        let mut per_server: BTreeMap<NodeId, Vec<ClientId>> = BTreeMap::new();
        for &c in &clients {
            if let Some(owner) = sim.owner_of(c) {
                per_server.entry(owner).or_default().push(c);
            }
        }
        println!("{label}");
        for (server, served) in &per_server {
            println!("  {server} serves {} client(s): {served:?}", served.len());
        }
    };

    sim.run_until(SimTime::from_secs(25));
    print_distribution(&sim, "before the new server (t=25s):");

    sim.run_until(SimTime::from_secs(45));
    print_distribution(&sim, "\nafter bringing up n3 for load balancing (t=45s):");

    sim.run_until(SimTime::from_secs(90));
    println!("\nviewer experience through the migration:");
    for &c in &clients {
        let stats = sim.client_stats(c).unwrap();
        println!(
            "  {c}: {:>4} frames received, {} freezes, {} late, {} skipped",
            stats.frames_received,
            stats.stalls.total(),
            stats.late.total(),
            stats.skipped.total()
        );
    }
}

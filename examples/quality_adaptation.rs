//! Quality adaptation (paper §4.3): clients whose links or decoders cannot
//! handle the full rate receive all I frames plus a thinned selection of
//! incremental frames.
//!
//! ```text
//! cargo run --example quality_adaptation
//! ```

use std::time::Duration;

use ftvod::prelude::*;

fn main() {
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(120)),
    );
    let full = ClientId(1);
    let capped = ClientId(2);
    let mut builder = ScenarioBuilder::new(9);
    builder
        .network(LinkProfile::lan())
        .movie(movie, &[NodeId(1), NodeId(2)])
        .server(NodeId(1))
        .server(NodeId(2))
        // One full-quality viewer, one limited to 10 fps (e.g. a software
        // decoder behind a slow link).
        .client(full, NodeId(100), MovieId(1), SimTime::from_secs(2))
        .client_with_cap(capped, NodeId(101), MovieId(1), SimTime::from_secs(2), 10);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(62));

    println!("sixty seconds of the same movie, two capability classes:\n");
    for (label, c) in [
        ("full quality (30 fps)", full),
        ("capped at 10 fps", capped),
    ] {
        let stats = sim.client_stats(c).unwrap();
        let rate = stats.frames_received as f64 / 60.0;
        println!(
            "  {label:<24} {:>5} frames (≈{rate:>4.1} fps delivered), {} freezes",
            stats.frames_received,
            stats.stalls.total()
        );
    }

    let full_stats = sim.client_stats(full).unwrap();
    let capped_stats = sim.client_stats(capped).unwrap();
    let ratio = capped_stats.frames_received as f64 / full_stats.frames_received as f64;
    println!(
        "\nthe capped client consumed {:.0}% of the full-rate bandwidth while \
         still receiving every I frame (2 per second), so the picture stays decodable.",
        ratio * 100.0
    );
}

//! Quickstart: a two-replica VoD deployment surviving a server crash.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use ftvod::prelude::*;

fn main() {
    // A 1.4 Mbps / 30 fps synthetic movie, replicated on two servers.
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(90)),
    );
    let (s1, s2, viewer) = (NodeId(1), NodeId(2), NodeId(100));

    let mut builder = ScenarioBuilder::new(42);
    builder
        .network(LinkProfile::lan())
        .movie(movie, &[s1, s2])
        .server(s1)
        .server(s2)
        // The viewer tunes in two seconds after the service comes up...
        .client(ClientId(1), viewer, MovieId(1), SimTime::from_secs(2))
        // ...and the server transmitting to it dies half a minute later.
        .crash_at(SimTime::from_secs(30), s2);

    let mut sim = builder.build();
    println!("starting the movie; server {s2} will crash at t=30s\n");

    for checkpoint in [10u64, 20, 29, 31, 35, 60] {
        sim.run_until(SimTime::from_secs(checkpoint));
        let stats = sim.client_stats(ClientId(1)).expect("client exists");
        println!(
            "t={checkpoint:>3}s  served by {:?}  received {:>5} frames  \
             buffer {:>2} frames  visible freezes: {}",
            sim.owner_of(ClientId(1)),
            stats.frames_received,
            stats.sw_occupancy.last().unwrap_or(0.0) as u64,
            stats.stalls.total(),
        );
    }

    let stats = sim.client_stats(ClientId(1)).unwrap();
    println!(
        "\nthe crash cost {} duplicate (late) frames and {} skipped frames,",
        stats.late.total(),
        stats.skipped.total()
    );
    println!(
        "and the viewer saw {} frozen frames — the takeover was invisible.",
        stats.stalls.total()
    );
    for (at, dur) in &stats.interruptions {
        println!(
            "stream interruption at t={at:.2}s lasting {dur:.2}s (failure detection + takeover)"
        );
    }
}

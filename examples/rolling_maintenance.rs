//! Rolling maintenance: restart every replica, one at a time, while a
//! viewer keeps watching.
//!
//! The paper's §3 notes that a server may "crash or detach"; the graceful
//! detach path hands clients over *without* waiting for failure detection.
//! Combined with on-the-fly bring-up, the whole fleet can be cycled under
//! a live audience — the operational super-power the design buys.
//!
//! ```text
//! cargo run --example rolling_maintenance
//! ```

use std::time::Duration;

use ftvod::prelude::*;

fn main() {
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(180)),
    );
    let (s1, s2, s3) = (NodeId(1), NodeId(2), NodeId(3));
    let mut builder = ScenarioBuilder::new(13);
    builder
        .network(LinkProfile::lan())
        .movie(movie, &[s1, s2, s3])
        .server(s1)
        .server(s2)
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
        // Rolling restart: drain s2 at 20s and bring up its replacement s3;
        // then drain s1 at 50s (s3 keeps serving); finally restart s1 at 70s.
        .shutdown_at(SimTime::from_secs(20), s2)
        .server_at(SimTime::from_secs(22), s3)
        .shutdown_at(SimTime::from_secs(50), s1)
        .server_at(SimTime::from_secs(70), s1);
    let mut sim = builder.build();

    println!("rolling maintenance across the whole fleet:\n");
    for checkpoint in [15u64, 25, 40, 55, 75, 100] {
        sim.run_until(SimTime::from_secs(checkpoint));
        let stats = sim.client_stats(ClientId(1)).unwrap();
        let fleet: Vec<String> = [s1, s2, s3]
            .iter()
            .map(|&s| format!("{s}:{}", if sim.is_alive(s) { "up" } else { "down" }))
            .collect();
        println!(
            "t={checkpoint:>3}s  fleet [{}]  serving={:?}  received={:>5}  freezes={}",
            fleet.join(" "),
            sim.owner_of(ClientId(1)),
            stats.frames_received,
            stats.stalls.total(),
        );
    }

    let stats = sim.client_stats(ClientId(1)).unwrap();
    println!(
        "\nthe viewer sat through two drains and two bring-ups: {} frozen frames,",
        stats.stalls.total()
    );
    println!(
        "{} duplicate frames across all handoffs, longest interruption {:.2}s.",
        stats.late.total(),
        stats
            .interruptions
            .iter()
            .map(|&(_, d)| d)
            .fold(0.0_f64, f64::max)
    );
}

//! Beyond VoD: a replicated state machine in forty lines of application
//! code, on the same group communication substrate.
//!
//! The paper closes with: "The concepts demonstrated in this work are
//! general, and may be exploited to construct a variety of highly
//! available servers." This example backs that claim — a replicated
//! counter service built directly on [`gcs`]'s agreed (total-order)
//! multicast: every replica applies the same operations in the same order,
//! so replicas never diverge, and membership changes (crash, join) are
//! handled by the substrate.
//!
//! ```text
//! cargo run --example replicated_counter
//! ```

use std::time::Duration;

use ftvod::group::{Carried, GcsConfig, GcsEvent, GcsNode, GcsPacket, GroupId};
use ftvod::sim::{
    Context, Endpoint, LinkProfile, NodeId, Payload, Port, Process, SimTime, Simulation, Timer,
};

const PORT: Port = Port(1);
const TICK: u64 = 1;
const GROUP: GroupId = GroupId(1);

/// Operations on the replicated counter.
#[derive(Clone, Debug, PartialEq)]
enum Op {
    Add(i64),
    Reset,
}

impl Payload for Op {
    fn size_bytes(&self) -> usize {
        16
    }
}

type Wire = GcsPacket<Op>;

/// A counter replica: the whole application is `apply` plus the GCS
/// plumbing.
struct Replica {
    gcs: GcsNode<Op>,
    value: i64,
    applied: u64,
}

impl Replica {
    fn new(node: NodeId, peers: Vec<NodeId>) -> Self {
        Replica {
            gcs: GcsNode::new(GcsConfig::new(), node, PORT, TICK, peers),
            value: 0,
            applied: 0,
        }
    }

    fn apply(&mut self, events: Vec<GcsEvent<Op>>) {
        for event in events {
            if let GcsEvent::DeliverAgreed { payload, .. } = event {
                match payload {
                    Op::Add(n) => self.value += n,
                    Op::Reset => self.value = 0,
                }
                self.applied += 1;
            }
        }
    }
}

impl Process<Wire> for Replica {
    fn on_start(&mut self, ctx: &mut Context<'_, Wire>) {
        self.gcs.start(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_, Wire>, from: Endpoint, _: Endpoint, msg: Wire) {
        let events = self.gcs.on_packet(ctx, from, msg);
        self.apply(events);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire>, timer: Timer) {
        let events = self.gcs.on_timer(ctx, timer);
        self.apply(events);
    }
}

fn submit(sim: &mut Simulation<Wire>, node: NodeId, op: Op) {
    sim.invoke(node, |r: &mut Replica, ctx| {
        let events = r.gcs.multicast_agreed(ctx, GROUP, op).expect("member");
        r.apply(events);
    });
}

fn main() {
    let ids: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let mut sim = Simulation::new(11);
    sim.set_default_profile(LinkProfile::lan().with_jitter(Duration::from_millis(5)));
    for &id in &ids {
        sim.add_node(id, Replica::new(id, ids.clone()));
    }
    sim.run_until(SimTime::from_millis(100));
    sim.invoke(ids[0], |r: &mut Replica, _| {
        let events = r.gcs.create_group(GROUP);
        r.apply(events);
    });
    for &id in &ids[1..] {
        sim.invoke(id, |r: &mut Replica, ctx| r.gcs.join(ctx, GROUP, &[]));
    }
    sim.run_for(Duration::from_secs(2));

    // Concurrent conflicting operations from every replica.
    println!("three replicas issue interleaved Add/Reset operations concurrently...");
    for round in 0..10 {
        submit(&mut sim, NodeId(1), Op::Add(1));
        submit(&mut sim, NodeId(2), Op::Add(100));
        if round % 3 == 2 {
            submit(&mut sim, NodeId(3), Op::Reset);
        }
        sim.run_for(Duration::from_millis(20));
    }
    sim.run_for(Duration::from_secs(1));
    for &id in &ids {
        let (value, applied) = sim
            .with_process(id, |r: &Replica| (r.value, r.applied))
            .unwrap();
        println!("  replica {id}: value = {value} after {applied} agreed operations");
    }
    let values: Vec<i64> = ids
        .iter()
        .map(|&id| sim.with_process(id, |r: &Replica| r.value).unwrap())
        .collect();
    assert!(
        values.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged!"
    );
    println!("\nall replicas agree despite concurrent Resets — total order at work.");

    // Crash one replica; the survivors keep accepting operations.
    sim.crash_at(sim.now(), NodeId(1));
    sim.run_for(Duration::from_secs(2));
    submit(&mut sim, NodeId(2), Op::Add(7));
    submit(&mut sim, NodeId(3), Op::Add(7));
    sim.run_for(Duration::from_secs(1));
    let v2 = sim.with_process(NodeId(2), |r: &Replica| r.value).unwrap();
    let v3 = sim.with_process(NodeId(3), |r: &Replica| r.value).unwrap();
    assert_eq!(v2, v3);
    println!("after crashing a replica the survivors still agree: value = {v2}");
    let _ = Carried::Plain(Op::Reset); // (re-exported envelope type)
}

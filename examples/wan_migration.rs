//! The paper's WAN measurement scenario (§6.2, Figure 5).
//!
//! The same service runs across a simulated 7-hop Internet path (25 ms
//! delay, jitter, ~1 % loss, occasional reordering) without any QoS
//! reservation. A new server is brought up ~25 s into the movie (load
//! balance); the transmitting server is terminated ~22 s later. Loss makes
//! the displayed quality inferior to the LAN — skipped frames accumulate
//! steadily — while the failover events still pass without a freeze.
//!
//! ```text
//! cargo run --example wan_migration
//! ```

use ftvod::prelude::*;

fn main() {
    let (builder, balance_at, crash_at) = presets::fig5_wan(11);
    let mut sim = builder.build();
    println!("WAN scenario: load balance at {balance_at}, crash at {crash_at}\n");

    for checkpoint in (5..=90).step_by(5) {
        sim.run_until(SimTime::from_secs(checkpoint));
        let stats = sim.client_stats(presets::CLIENT_ID).unwrap();
        println!(
            "t={checkpoint:>2}s  owner={:?}  skipped={:>3}  overflow={:>3}  late={:>3}  stalls={:>3}",
            sim.owner_of(presets::CLIENT_ID),
            stats.skipped.total(),
            stats.overflow.total(),
            stats.late.total(),
            stats.stalls.total(),
        );
    }

    let stats = sim.client_stats(presets::CLIENT_ID).unwrap();
    let net = sim.net_stats();
    let video = net.class("video");
    println!(
        "\nnetwork loss: {} of {} video datagrams ({:.2}%)",
        video.dropped_loss,
        video.sent_msgs,
        100.0 * video.dropped_loss as f64 / video.sent_msgs as f64
    );
    println!(
        "skipped {} frames total (lost + overflow-discarded {}), late {}",
        stats.skipped.total(),
        stats.overflow.total(),
        stats.late.total()
    );
    println!(
        "the movie still played with {} visible freezes across both events",
        stats.stalls.total()
    );
}

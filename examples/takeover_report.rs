//! The observability subsystem on the paper's LAN crash scenario: record
//! the cross-layer event stream, then derive the takeover-latency
//! breakdown the paper reports in §6.1 — how long the survivors needed to
//! agree on a new membership view, and how long from there until video
//! flowed to the client again.
//!
//! ```text
//! cargo run --example takeover_report
//! ```

use ftvod::prelude::*;

fn main() {
    let (mut builder, crash_at, balance_at) = presets::fig4_lan(7);
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    println!(
        "LAN scenario with event recording: crash at {crash_at}, load balance at {balance_at}\n"
    );
    sim.run_until(SimTime::from_secs(92));

    let report = sim.report().expect("recording was enabled");
    print!("{report}");

    // The same stream, sliced by hand: every takeover's split between the
    // membership protocol and the video resume.
    for takeover in &report.takeovers {
        println!(
            "\n{} lost its server at t={:.2}s:",
            takeover.client, takeover.triggered_s
        );
        println!(
            "  view change (failure detection + flush + install): {:.3}s",
            takeover.view_change_s
        );
        println!(
            "  resume (state exchange + redistribution + first frame): {:.3}s",
            takeover.resume_s
        );
        println!(
            "  total service interruption: {:.3}s, resumed at frame {}",
            takeover.total_s, takeover.resume_frame
        );
    }

    // A few raw JSONL lines, to show what `ftvod-cli trace lan` exports.
    let jsonl = sim.events_jsonl().expect("recording was enabled");
    println!("\nfirst event lines of the JSONL export:");
    for line in jsonl.lines().take(5) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", jsonl.lines().count());
}

//! Live demo: the exact same server/client state machines that run in the
//! simulator, executed on the wall clock for ten real seconds — including
//! a real-time failover.
//!
//! Everything else in this repository measures the service inside the
//! deterministic simulator; this example shows that the implementation is
//! a real service: the [`simnet::rt::RealTimeRunner`] drives it with real
//! timers and an in-process lossy network, and the takeover happens while
//! you watch.
//!
//! ```text
//! cargo run --example live_demo            # runs ~10 wall-clock seconds
//! ```

use std::sync::Arc;
use std::time::Duration;

use ftvod::prelude::*;
use ftvod::vod::client::{VodClient, WatchRequest};
use ftvod::vod::protocol::VodWire;
use ftvod::vod::server::{Replica, VodServer};
use simnet::rt::RealTimeRunner;

fn main() {
    let movie = Arc::new(Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(60)),
    ));
    let servers = vec![NodeId(1), NodeId(2)];
    let cfg = VodConfig::paper_default();

    let mut rt: RealTimeRunner<VodWire> = RealTimeRunner::new(42);
    rt.set_default_profile(LinkProfile::lan());
    for &s in &servers {
        let replicas = vec![Replica {
            movie: Arc::clone(&movie),
            holders: servers.clone(),
        }];
        rt.add_node(s, VodServer::new(cfg.clone(), s, servers.clone(), replicas));
    }
    rt.add_node(
        NodeId(100),
        VodClient::new(
            cfg,
            ClientId(1),
            NodeId(100),
            servers.clone(),
            WatchRequest::full_quality(&movie),
        ),
    );

    println!("streaming live (wall-clock time!); the serving replica dies at t=5s\n");
    for second in 1..=10u64 {
        rt.run_for(Duration::from_secs(1));
        if second == 5 {
            rt.stop_node(NodeId(2));
        }
        let (received, sw, hw, stalls, displayed) = rt
            .with_process(NodeId(100), |c: &VodClient| {
                (
                    c.stats().frames_received,
                    c.sw_occupancy(),
                    c.hw_occupancy(),
                    c.stats().stalls.total(),
                    c.displayed(),
                )
            })
            .expect("client exists");
        let marker = if second == 5 {
            "  << n2 KILLED (for real)"
        } else {
            ""
        };
        println!(
            "t={second:>2}s  received {received:>4}  displayed {displayed:>4}  \
             sw {sw:>2}f  hw {:>3}KB  freezes {stalls}{marker}",
            hw / 1000
        );
    }

    let stats = rt
        .with_process(NodeId(100), |c: &VodClient| c.stats().clone())
        .unwrap();
    println!(
        "\nten real seconds of video, one real crash: {} frozen frames, \
         {} duplicates at the takeover.",
        stats.stalls.total(),
        stats.late.total()
    );
    for (at, gap) in &stats.interruptions {
        println!("the stream was interrupted at t={at:.2}s for {gap:.2}s — the takeover, live.");
    }
}

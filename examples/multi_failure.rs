//! Fault-tolerance degree (paper §7): a movie replicated k times tolerates
//! k−1 failures, unlike the Tiger-like single-backup design or a classical
//! single server.
//!
//! Four replicas are killed one by one under three takeover policies; the
//! table shows when each design starts freezing.
//!
//! ```text
//! cargo run --example multi_failure
//! ```

use std::time::Duration;

use ftvod::prelude::*;

fn run(policy: TakeoverPolicy) -> Vec<(u64, u64, bool)> {
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(160)),
    );
    let servers = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
    let mut builder = ScenarioBuilder::new(21);
    builder
        .network(LinkProfile::lan())
        .config(VodConfig::paper_default().with_takeover(policy))
        .movie(movie, &servers)
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2));
    for &s in &servers {
        builder.server(s);
    }
    // Kill the replicas highest-id first (the order they serve in).
    builder
        .crash_at(SimTime::from_secs(20), NodeId(4))
        .crash_at(SimTime::from_secs(40), NodeId(3))
        .crash_at(SimTime::from_secs(60), NodeId(2));
    let mut sim = builder.build();
    let mut rows = Vec::new();
    for checkpoint in [30u64, 50, 70, 90] {
        sim.run_until(SimTime::from_secs(checkpoint));
        let stats = sim.client_stats(ClientId(1)).unwrap();
        rows.push((
            checkpoint,
            stats.stalls.total(),
            sim.owner_of(ClientId(1)).is_some(),
        ));
    }
    rows
}

fn main() {
    println!("movie replicated on 4 servers; crashes at t=20s, 40s, 60s\n");
    println!(
        "{:<28} {:>14} {:>14} {:>14} {:>14}",
        "takeover policy", "after 1 crash", "after 2", "after 3", "t=90s"
    );
    for (label, policy) in [
        ("full (this paper)", TakeoverPolicy::Full),
        ("single backup (Tiger-like)", TakeoverPolicy::SingleBackup),
        ("none (single server)", TakeoverPolicy::None),
    ] {
        let rows = run(policy);
        let cells: Vec<String> = rows
            .iter()
            .map(|&(_, stalls, served)| {
                if served && stalls == 0 {
                    "smooth".to_owned()
                } else if served {
                    format!("{stalls} freezes")
                } else {
                    format!("DEAD ({stalls})")
                }
            })
            .collect();
        println!(
            "{:<28} {:>14} {:>14} {:>14} {:>14}",
            label, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!(
        "\nonly the paper's design survives every failure while replicas remain; \
         k replicas tolerate k-1 failures."
    );
}

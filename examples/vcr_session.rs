//! Full VCR-like control (paper §3): pause, resume and random access —
//! including the §4.1 emergency refill that follows a seek.
//!
//! ```text
//! cargo run --example vcr_session
//! ```

use std::time::Duration;

use ftvod::prelude::*;
use ftvod::video::FrameNo;

fn main() {
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(180)),
    );
    let mut builder = ScenarioBuilder::new(3);
    builder
        .network(LinkProfile::lan())
        .movie(movie, &[NodeId(1), NodeId(2)])
        .server(NodeId(1))
        .server(NodeId(2))
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
        // Watch, pause for ten seconds, resume, then jump to minute two.
        .vcr_at(SimTime::from_secs(20), ClientId(1), VcrOp::Pause)
        .vcr_at(SimTime::from_secs(30), ClientId(1), VcrOp::Resume)
        .vcr_at(
            SimTime::from_secs(45),
            ClientId(1),
            VcrOp::Seek(FrameNo(3600)),
        );
    let mut sim = builder.build();

    let mut last_received = 0;
    for checkpoint in [10u64, 19, 25, 29, 35, 44, 47, 55, 70] {
        sim.run_until(SimTime::from_secs(checkpoint));
        let stats = sim.client_stats(ClientId(1)).unwrap();
        let phase = match checkpoint {
            0..=19 => "playing",
            20..=29 => "paused",
            30..=44 => "resumed",
            45..=46 => "seeking to frame 3600 (2:00)",
            _ => "playing from 2:00",
        };
        println!(
            "t={checkpoint:>2}s [{phase:<28}] received {:>5} (+{:>3})  displayed {:>5}  emergencies {}",
            stats.frames_received,
            stats.frames_received - last_received,
            sim.client_displayed(ClientId(1)).unwrap(),
            stats.emergencies.total(),
        );
        last_received = stats.frames_received;
    }

    let stats = sim.client_stats(ClientId(1)).unwrap();
    println!(
        "\nthe seek flushed the buffers; the emergency mechanism refilled them \
         ({} emergency requests total) with {} visible freezes after the jump.",
        stats.emergencies.total(),
        stats.stalls.total()
    );
}

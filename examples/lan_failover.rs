//! The paper's LAN measurement scenario (§6.1, Figure 4), narrated.
//!
//! Two replicas serve a client on a switched-Ethernet profile. The
//! transmitting server is killed ~38 s into the movie; ~24 s later a third
//! server is brought up and the client is migrated to it for load
//! balancing. The example prints the evolution of the four quantities the
//! paper plots: skipped frames, late frames, software- and hardware-buffer
//! occupancy.
//!
//! ```text
//! cargo run --example lan_failover
//! ```

use ftvod::prelude::*;
use ftvod::vod::metrics::sparkline;

fn main() {
    let (builder, crash_at, balance_at) = presets::fig4_lan(7);
    let mut sim = builder.build();
    println!("LAN scenario: crash at {crash_at}, load-balance migration at {balance_at}\n");

    let mut last_late = 0;
    let mut last_skipped = 0;
    for checkpoint in (5..=120).step_by(5) {
        sim.run_until(SimTime::from_secs(checkpoint));
        let stats = sim.client_stats(presets::CLIENT_ID).unwrap();
        let marker = if checkpoint as f64 >= crash_at.as_secs_f64()
            && (checkpoint as f64) < crash_at.as_secs_f64() + 5.0
        {
            "  << CRASH"
        } else if checkpoint as f64 >= balance_at.as_secs_f64()
            && (checkpoint as f64) < balance_at.as_secs_f64() + 5.0
        {
            "  << LOAD BALANCE"
        } else {
            ""
        };
        println!(
            "t={checkpoint:>3}s  owner={:?}  sw={:>2}f hw={:>3}KB  skipped={:>2} (+{})  late={:>2} (+{})  stalls={}{}",
            sim.owner_of(presets::CLIENT_ID),
            stats.sw_occupancy.last().unwrap_or(0.0) as u64,
            stats.hw_occupancy.last().unwrap_or(0.0) as u64 / 1000,
            stats.skipped.total(),
            stats.skipped.total() - last_skipped,
            stats.late.total(),
            stats.late.total() - last_late,
            stats.stalls.total(),
            marker,
        );
        last_late = stats.late.total();
        last_skipped = stats.skipped.total();
    }

    let stats = sim.client_stats(presets::CLIENT_ID).unwrap();
    println!("\nsoftware buffer occupancy (frames) over the run:");
    println!("  {}", sparkline(&stats.sw_occupancy, 80));
    println!("hardware buffer occupancy (bytes) over the run:");
    println!("  {}", sparkline(&stats.hw_occupancy, 80));
    println!(
        "\nsummary: {} frames received, {} displayed, {} visible freezes,",
        stats.frames_received,
        sim.client_displayed(presets::CLIENT_ID).unwrap(),
        stats.stalls.total()
    );
    println!(
        "{} duplicates at migrations, {} skipped, no I frame lost: {}",
        stats.late.total(),
        stats.skipped.total(),
        stats.i_frames_evicted == 0
    );
}

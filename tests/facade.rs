//! Cross-crate integration tests through the `ftvod` facade: multi-movie
//! deployments, mixed client capabilities and the public prelude API.

use std::time::Duration;

use ftvod::prelude::*;

fn movie(id: u32, secs: u64, seed: u64) -> Movie {
    Movie::generate(
        MovieId(id),
        &MovieSpec::paper_default()
            .with_duration(Duration::from_secs(secs))
            .with_seed(seed),
    )
}

#[test]
fn prelude_covers_the_quickstart() {
    let mut builder = ScenarioBuilder::new(42);
    builder
        .network(LinkProfile::lan())
        .movie(movie(1, 60, 1), &[NodeId(1), NodeId(2)])
        .server(NodeId(1))
        .server(NodeId(2))
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
        .crash_at(SimTime::from_secs(20), NodeId(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(40));
    let stats = sim.client_stats(ClientId(1)).unwrap();
    assert_eq!(stats.stalls.total(), 0);
    assert_eq!(sim.owner_of(ClientId(1)), Some(NodeId(1)));
}

#[test]
fn two_movies_with_disjoint_replica_sets() {
    // Movie 1 lives on {1,2}, movie 2 on {2,3}: server 2 participates in
    // both movie groups.
    let mut builder = ScenarioBuilder::new(7);
    builder
        .network(LinkProfile::lan())
        .movie(movie(1, 90, 1), &[NodeId(1), NodeId(2)])
        .movie(movie(2, 90, 2), &[NodeId(2), NodeId(3)])
        .server(NodeId(1))
        .server(NodeId(2))
        .server(NodeId(3))
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
        .client(ClientId(2), NodeId(101), MovieId(2), SimTime::from_secs(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(30));
    let o1 = sim.owner_of(ClientId(1)).expect("movie 1 served");
    let o2 = sim.owner_of(ClientId(2)).expect("movie 2 served");
    assert!(
        o1 == NodeId(1) || o1 == NodeId(2),
        "movie 1 replica serves it"
    );
    assert!(
        o2 == NodeId(2) || o2 == NodeId(3),
        "movie 2 replica serves it"
    );
    for c in [ClientId(1), ClientId(2)] {
        let stats = sim.client_stats(c).unwrap();
        assert_eq!(stats.stalls.total(), 0, "client {c:?}");
        assert!(stats.frames_received > 700);
    }
}

#[test]
fn crash_only_disturbs_the_affected_movie() {
    let mut builder = ScenarioBuilder::new(8);
    builder
        .network(LinkProfile::lan())
        .movie(movie(1, 90, 1), &[NodeId(1), NodeId(2)])
        .movie(movie(2, 90, 2), &[NodeId(3), NodeId(4)])
        .server(NodeId(1))
        .server(NodeId(2))
        .server(NodeId(3))
        .server(NodeId(4))
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
        .client(ClientId(2), NodeId(101), MovieId(2), SimTime::from_secs(2))
        // Kill a replica of movie 1 only.
        .crash_at(SimTime::from_secs(20), NodeId(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(45));
    // Movie 1 failed over to its surviving replica.
    assert_eq!(sim.owner_of(ClientId(1)), Some(NodeId(1)));
    // Movie 2 is untouched: no duplicates, no interruption.
    let stats2 = sim.client_stats(ClientId(2)).unwrap();
    assert_eq!(stats2.late.total(), 0, "unrelated movie saw churn");
    assert!(stats2.interruptions.is_empty());
    assert_eq!(stats2.stalls.total(), 0);
}

#[test]
fn mixed_capability_clients_share_a_server() {
    let mut builder = ScenarioBuilder::new(9);
    builder
        .network(LinkProfile::lan())
        .movie(movie(1, 90, 1), &[NodeId(1), NodeId(2)])
        .server(NodeId(1))
        .server(NodeId(2))
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
        .client_with_cap(
            ClientId(2),
            NodeId(101),
            MovieId(1),
            SimTime::from_secs(2),
            15,
        )
        .client_with_cap(
            ClientId(3),
            NodeId(102),
            MovieId(1),
            SimTime::from_secs(3),
            5,
        );
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(62));
    let full = sim.client_stats(ClientId(1)).unwrap().frames_received;
    let half = sim.client_stats(ClientId(2)).unwrap().frames_received;
    let low = sim.client_stats(ClientId(3)).unwrap().frames_received;
    assert!(
        full > half && half > low,
        "rates must order: {full} > {half} > {low}"
    );
    for c in [ClientId(1), ClientId(2), ClientId(3)] {
        assert_eq!(sim.client_stats(c).unwrap().stalls.total(), 0);
    }
}

#[test]
fn wan_with_quality_cap_and_failover() {
    let mut builder = ScenarioBuilder::new(10);
    builder
        .network(LinkProfile::wan())
        .movie(movie(1, 90, 1), &[NodeId(1), NodeId(2)])
        .server(NodeId(1))
        .server(NodeId(2))
        .client_with_cap(
            ClientId(1),
            NodeId(100),
            MovieId(1),
            SimTime::from_secs(2),
            15,
        )
        .crash_at(SimTime::from_secs(25), NodeId(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(55));
    assert_eq!(sim.owner_of(ClientId(1)), Some(NodeId(1)));
    let stats = sim.client_stats(ClientId(1)).unwrap();
    assert!(stats.frames_received > 400, "thinned WAN stream flows");
    assert!(stats.stalls.total() < 60, "takeover acceptable on WAN");
}

#[test]
fn takeover_policies_are_exposed_via_prelude() {
    // Exercise the baseline knobs through the facade types.
    let cfg = VodConfig::paper_default()
        .with_takeover(TakeoverPolicy::SingleBackup)
        .with_resume(ResumePolicy::SkipAhead);
    assert_eq!(cfg.takeover, TakeoverPolicy::SingleBackup);
    assert_eq!(cfg.resume, ResumePolicy::SkipAhead);
    let mut builder = ScenarioBuilder::new(11);
    builder
        .network(LinkProfile::lan())
        .config(cfg)
        .movie(movie(1, 60, 1), &[NodeId(1), NodeId(2)])
        .server(NodeId(1))
        .server(NodeId(2))
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
        .crash_at(SimTime::from_secs(20), NodeId(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(40));
    // First failure is covered even by the single-backup baseline.
    assert_eq!(sim.owner_of(ClientId(1)), Some(NodeId(1)));
}

#[test]
fn wan_reordering_is_absorbed_by_the_software_buffer() {
    // Heavy reordering, zero loss: the reorder buffer must hide nearly all
    // of it (out-of-order arrivals slot into place; almost nothing arrives
    // late once the buffer holds a second of cushion).
    let mut profile = LinkProfile::wan().with_loss(0.0);
    profile.duplicate = 0.0;
    profile.reorder = 0.10;
    profile.reorder_extra = Duration::from_millis(40);
    let mut builder = ScenarioBuilder::new(12);
    builder
        .network(profile)
        .movie(movie(1, 90, 1), &[NodeId(1), NodeId(2)])
        .server(NodeId(1))
        .server(NodeId(2))
        .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2));
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(62));
    let stats = sim.client_stats(ClientId(1)).unwrap();
    assert!(stats.frames_received > 1600, "stream flows");
    // ~10% of the frames arrive out of order. While the buffers are still
    // filling the software cushion is empty and gaps are passed through
    // (the paper's startup effect); once it exists, absorption must be
    // total. WAN round-trips stretch the fill to ~20 s here.
    let late_after_warmup = stats.late.in_window(25.0, 62.0);
    assert!(
        late_after_warmup <= 5,
        "reordering leaked through the buffer: {late_after_warmup} late"
    );
    let skipped_after_warmup = stats.skipped.in_window(25.0, 62.0);
    assert!(
        skipped_after_warmup <= 5,
        "reordering caused skips: {skipped_after_warmup}"
    );
    assert_eq!(
        stats.stalls.in_window(25.0, 62.0),
        0,
        "no freezes once the cushion exists"
    );
}

//! Real-time smoke test: the full VoD stack streaming on the wall clock
//! through `simnet::rt::RealTimeRunner` (a fast, sub-2s version of the
//! `live_demo` example).

use std::sync::Arc;
use std::time::Duration;

use ftvod::prelude::*;
use ftvod::vod::client::{VodClient, WatchRequest};
use ftvod::vod::protocol::VodWire;
use ftvod::vod::server::{Replica, VodServer};
use simnet::rt::RealTimeRunner;

#[test]
fn video_streams_in_real_time() {
    let movie = Arc::new(Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(30)),
    ));
    let servers = vec![NodeId(1), NodeId(2)];
    let cfg = VodConfig::paper_default();
    let mut rt: RealTimeRunner<VodWire> = RealTimeRunner::new(5);
    rt.set_default_profile(LinkProfile::lan());
    for &s in &servers {
        rt.add_node(
            s,
            VodServer::new(
                cfg.clone(),
                s,
                servers.clone(),
                vec![Replica {
                    movie: Arc::clone(&movie),
                    holders: servers.clone(),
                }],
            ),
        );
    }
    rt.add_node(
        NodeId(100),
        VodClient::new(
            cfg,
            ClientId(1),
            NodeId(100),
            servers.clone(),
            WatchRequest::full_quality(&movie),
        ),
    );
    // ~1.6 wall-clock seconds: connect, stream, then a live failover.
    rt.run_for(Duration::from_millis(1_100));
    let before = rt
        .with_process(NodeId(100), |c: &VodClient| c.stats().frames_received)
        .expect("client exists");
    assert!(before > 10, "live stream never started: {before} frames");
    rt.stop_node(NodeId(2));
    rt.run_for(Duration::from_millis(900));
    let after = rt
        .with_process(NodeId(100), |c: &VodClient| c.stats().frames_received)
        .unwrap();
    assert!(
        after > before + 5,
        "stream did not survive the live crash: {before} -> {after}"
    );
}

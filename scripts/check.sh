#!/usr/bin/env sh
# Workspace gate: formatting, lints (warnings are errors), tests.
# Run from the repository root:  sh scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (no deps)"
cargo doc --workspace --no-deps --quiet

echo "all checks passed"

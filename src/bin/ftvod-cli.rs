//! `ftvod-cli` — run fault-tolerant VoD scenarios from the command line.
//!
//! ```text
//! ftvod-cli lan [--seed N]                  the paper's Figure 4 scenario
//! ftvod-cli wan [--seed N]                  the paper's Figure 5 scenario
//! ftvod-cli trace <lan|wan> [--seed N] [--out FILE]
//!                                           run a preset and export the
//!                                           cross-layer event stream as
//!                                           JSON Lines (stdout by default)
//! ftvod-cli report <lan|wan> [--seed N]     run a preset and print the
//!                                           derived run report: takeover
//!                                           latency breakdown (view-change
//!                                           + resume), delivery latency
//!                                           percentiles, glitch windows
//! ftvod-cli custom [options]                build your own deployment
//!   --servers N        replicas at start            (default 2)
//!   --clients M        viewers                      (default 1)
//!   --seconds S        how long to run              (default 60)
//!   --profile P        lan | wan | wan-reserved     (default lan)
//!   --crash T          crash the serving replica at T seconds (repeatable)
//!   --shutdown T       gracefully detach the serving replica at T
//!   --seed N           determinism seed             (default 42)
//! ```

use std::process::ExitCode;
use std::time::Duration;

use ftvod::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct CustomOptions {
    servers: u32,
    clients: u32,
    seconds: u64,
    profile: String,
    crashes: Vec<u64>,
    shutdowns: Vec<u64>,
    seed: u64,
}

impl Default for CustomOptions {
    fn default() -> Self {
        CustomOptions {
            servers: 2,
            clients: 1,
            seconds: 60,
            profile: "lan".to_owned(),
            crashes: Vec::new(),
            shutdowns: Vec::new(),
            seed: 42,
        }
    }
}

fn parse_custom(args: &[String]) -> Result<CustomOptions, String> {
    let mut opts = CustomOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--servers" => {
                opts.servers = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            "--clients" => {
                opts.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--seconds" => {
                opts.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?
            }
            "--profile" => opts.profile = value("--profile")?.clone(),
            "--crash" => opts.crashes.push(
                value("--crash")?
                    .parse()
                    .map_err(|e| format!("--crash: {e}"))?,
            ),
            "--shutdown" => opts.shutdowns.push(
                value("--shutdown")?
                    .parse()
                    .map_err(|e| format!("--shutdown: {e}"))?,
            ),
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.servers == 0 || opts.clients == 0 {
        return Err("need at least one server and one client".to_owned());
    }
    if opts.servers <= opts.crashes.len() as u32 + opts.shutdowns.len() as u32 {
        return Err("cannot remove every replica".to_owned());
    }
    Ok(opts)
}

fn profile_by_name(name: &str) -> Result<LinkProfile, String> {
    match name {
        "lan" => Ok(LinkProfile::lan()),
        "wan" => Ok(LinkProfile::wan()),
        "wan-reserved" => Ok(LinkProfile::wan_reserved()),
        other => Err(format!(
            "unknown profile {other} (lan | wan | wan-reserved)"
        )),
    }
}

fn seed_flag(args: &[String]) -> Result<u64, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--seed" {
            let value = it.next().ok_or("--seed needs a value")?;
            return value.parse().map_err(|e| format!("--seed: {e}"));
        }
    }
    Ok(42)
}

fn out_flag(args: &[String]) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            return match it.next() {
                Some(path) => Ok(Some(path.clone())),
                None => Err("--out needs a value".to_owned()),
            };
        }
    }
    Ok(None)
}

fn summarize(sim: &VodSim, clients: &[ClientId]) {
    println!(
        "\n{:<8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}   served by",
        "client", "received", "displayed", "late", "skipped", "stalls", "emerg"
    );
    for &c in clients {
        let Some(stats) = sim.client_stats(c) else {
            continue;
        };
        println!(
            "{:<8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}   {:?}",
            c.to_string(),
            stats.frames_received,
            sim.client_displayed(c).unwrap_or(0),
            stats.late.total(),
            stats.skipped.total(),
            stats.stalls.total(),
            stats.emergencies.total(),
            sim.owner_of(c),
        );
        for (at, dur) in &stats.interruptions {
            println!("         interruption at t={at:.2}s for {dur:.2}s");
        }
    }
    println!("\nnetwork traffic:\n{}", sim.net_stats());
}

fn run_preset(which: &str, seed: u64) {
    let (mut builder, a, b) = match which {
        "lan" => presets::fig4_lan(seed),
        _ => presets::fig5_wan(seed),
    };
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let (first, second) = if which == "lan" {
        (("crash", a), ("load balance", b))
    } else {
        (("load balance", a), ("crash", b))
    };
    println!("running the paper's {which} scenario (seed {seed}):");
    println!("  {} at {}, {} at {}", first.0, first.1, second.0, second.1);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(92));
    summarize(&sim, &[presets::CLIENT_ID]);
    if let Some(report) = sim.report() {
        println!("\n{}", report.summary_line());
    }
}

/// Runs a preset with event recording and hands the finished sim back.
fn traced_preset(which: &str, seed: u64) -> VodSim {
    let (mut builder, _, _) = match which {
        "lan" => presets::fig4_lan(seed),
        _ => presets::fig5_wan(seed),
    };
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(92));
    sim
}

fn run_trace(which: &str, seed: u64, out: Option<&str>) -> Result<(), String> {
    let sim = traced_preset(which, seed);
    let jsonl = sim.events_jsonl().expect("recording was enabled");
    match out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {} events to {path}", jsonl.lines().count());
        }
        None => print!("{jsonl}"),
    }
    Ok(())
}

fn run_report(which: &str, seed: u64) {
    let sim = traced_preset(which, seed);
    let report = sim.report().expect("recording was enabled");
    println!("{which} scenario, seed {seed}:\n");
    print!("{report}");
}

fn run_custom(opts: &CustomOptions) -> Result<(), String> {
    let profile = profile_by_name(&opts.profile)?;
    let servers: Vec<NodeId> = (1..=opts.servers).map(NodeId).collect();
    let clients: Vec<ClientId> = (1..=opts.clients).map(ClientId).collect();
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(opts.seconds + 40)),
    );
    let mut builder = ScenarioBuilder::new(opts.seed);
    builder.network(profile).movie(movie, &servers);
    for &s in &servers {
        builder.server(s);
    }
    for (i, &c) in clients.iter().enumerate() {
        builder.client(
            c,
            NodeId(100 + c.0),
            MovieId(1),
            SimTime::from_secs(2 + i as u64 / 4),
        );
    }
    // Crashes/shutdowns target the highest-id replicas (the serving order).
    let mut victims = servers.clone();
    for &t in &opts.crashes {
        if let Some(victim) = victims.pop() {
            println!("scheduling crash of {victim} at t={t}s");
            builder.crash_at(SimTime::from_secs(t), victim);
        }
    }
    for &t in &opts.shutdowns {
        if let Some(victim) = victims.pop() {
            println!("scheduling graceful shutdown of {victim} at t={t}s");
            builder.shutdown_at(SimTime::from_secs(t), victim);
        }
    }
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(opts.seconds));
    summarize(&sim, &clients);
    if let Some(report) = sim.report() {
        println!("\n{}", report.summary_line());
    }
    Ok(())
}

fn preset_name(args: &[String]) -> Result<&'static str, String> {
    match args.first().map(String::as_str) {
        Some("lan") => Ok("lan"),
        Some("wan") => Ok("wan"),
        Some(other) => Err(format!(
            "expected a preset scenario (lan | wan), got \"{other}\""
        )),
        None => Err("expected a preset scenario (lan | wan)".to_owned()),
    }
}

fn exit_from(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some(which @ ("lan" | "wan")) => {
            exit_from(seed_flag(&args).map(|seed| run_preset(which, seed)))
        }
        Some("trace") => exit_from(preset_name(&args[1..]).and_then(|which| {
            let seed = seed_flag(&args)?;
            let out = out_flag(&args)?;
            run_trace(which, seed, out.as_deref())
        })),
        Some("report") => exit_from(preset_name(&args[1..]).and_then(|which| {
            run_report(which, seed_flag(&args)?);
            Ok(())
        })),
        Some("custom") => exit_from(parse_custom(&args[1..]).and_then(|opts| run_custom(&opts))),
        _ => {
            eprintln!("usage: ftvod-cli <lan | wan | trace | report | custom> [options]   (see --help in the source header)");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_parse() {
        let opts = parse_custom(&[]).unwrap();
        assert_eq!(opts, CustomOptions::default());
    }

    #[test]
    fn full_flag_set_parses() {
        let opts = parse_custom(&strings(&[
            "--servers",
            "4",
            "--clients",
            "3",
            "--seconds",
            "90",
            "--profile",
            "wan",
            "--crash",
            "20",
            "--crash",
            "40",
            "--shutdown",
            "60",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.servers, 4);
        assert_eq!(opts.clients, 3);
        assert_eq!(opts.seconds, 90);
        assert_eq!(opts.profile, "wan");
        assert_eq!(opts.crashes, vec![20, 40]);
        assert_eq!(opts.shutdowns, vec![60]);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse_custom(&strings(&["--bogus"])).is_err());
        assert!(parse_custom(&strings(&["--servers"])).is_err());
        assert!(parse_custom(&strings(&["--servers", "x"])).is_err());
    }

    #[test]
    fn rejects_removing_every_replica() {
        let err = parse_custom(&strings(&[
            "--servers",
            "2",
            "--crash",
            "10",
            "--crash",
            "20",
        ]))
        .unwrap_err();
        assert!(err.contains("every replica"));
    }

    #[test]
    fn trace_and_report_args_parse() {
        assert_eq!(preset_name(&strings(&["lan"])), Ok("lan"));
        assert_eq!(preset_name(&strings(&["wan", "--seed", "7"])), Ok("wan"));
        assert!(preset_name(&strings(&["atm"])).is_err());
        assert!(preset_name(&[]).is_err());
        assert_eq!(
            out_flag(&strings(&["trace", "lan", "--out", "e.jsonl"])),
            Ok(Some("e.jsonl".to_owned()))
        );
        assert_eq!(out_flag(&strings(&["trace", "lan"])), Ok(None));
        assert!(out_flag(&strings(&["trace", "lan", "--out"])).is_err());
        assert_eq!(seed_flag(&strings(&["lan"])), Ok(42));
        assert_eq!(seed_flag(&strings(&["lan", "--seed", "7"])), Ok(7));
        assert!(seed_flag(&strings(&["lan", "--seed", "banana"])).is_err());
        assert!(seed_flag(&strings(&["lan", "--seed"])).is_err());
    }

    #[test]
    fn profiles_resolve() {
        assert!(profile_by_name("lan").is_ok());
        assert!(profile_by_name("wan").is_ok());
        assert!(profile_by_name("wan-reserved").is_ok());
        assert!(profile_by_name("atm").is_err());
    }
}

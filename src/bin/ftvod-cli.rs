//! `ftvod-cli` — run fault-tolerant VoD scenarios from the command line.
//!
//! ```text
//! ftvod-cli lan [--seed N]                  the paper's Figure 4 scenario
//! ftvod-cli wan [--seed N]                  the paper's Figure 5 scenario
//! ftvod-cli trace <lan|wan> [--seed N] [--out FILE]
//!                                           run a preset and export the
//!                                           cross-layer event stream as
//!                                           JSON Lines (stdout by default)
//! ftvod-cli report <lan|wan> [--seed N] [--json]
//!                                           run a preset and print the
//!                                           derived run report: takeover
//!                                           latency breakdown (view-change
//!                                           + resume), delivery latency
//!                                           percentiles, glitch windows;
//!                                           --json emits the machine-readable
//!                                           form incl. oracle verdicts
//! ftvod-cli custom [options]                build your own deployment
//!   --servers N        replicas at start            (default 2)
//!   --clients M        viewers                      (default 1)
//!   --seconds S        how long to run              (default 60)
//!   --profile P        lan | wan | wan-reserved     (default lan)
//!   --crash T          crash the serving replica at T seconds (repeatable)
//!   --shutdown T       gracefully detach the serving replica at T
//!   --seed N           determinism seed             (default 42)
//! ftvod-cli fleet [options]                 generated fleet workload with
//!                                           dynamic replica management
//!   --servers N        VoD servers                  (default 4)
//!   --clients M        generated sessions           (default 96)
//!   --movies K         catalog size                 (default 6)
//!   --zipf S           popularity exponent          (default 1.1)
//!   --cap C            admission cap per server     (default 3M/2N)
//!   --seconds S        run length override
//!   --static           disable the dynamic replica manager
//!   --policy P         reactive | predictive | hybrid (default reactive)
//!   --prefix-secs S    enable the prefix-cache tier (default prefix 10s)
//!   --prefix-movies K  prefix-cache budget per server (default 4)
//!   --seed N           determinism seed             (default 42)
//! ftvod-cli flash [options]                 flash-crowd sweep: predictive
//!                                           placement + prefix cache vs a
//!                                           10x popularity shock; exits
//!                                           nonzero if the oracle fails
//!   --seeds N          number of sweep seeds        (default 10)
//!   --seed N           first seed                   (default 1)
//!   --compare          three-policy table on one seed
//! ftvod-cli chaos [options]                 seeded fault campaigns checked
//!                                           by the safety oracle; exits
//!                                           nonzero if any invariant fails
//!   --seeds N          number of campaign seeds     (default 5)
//!   --seed N           first seed                   (default 1)
//!   --faults K         fault slots per campaign     (default 6)
//!   --clients M        sessions per campaign        (default 24)
//!   --sync-ms MS       server sync interval         (default 500)
//!   --plan             print each campaign's fault schedule
//! ftvod-cli multidc [options]               two-datacenter site-crash sweep
//!                                           under remote-degraded failover,
//!                                           checked by the safety oracle;
//!                                           exits nonzero on any violation
//!   --seeds N          number of sweep seeds        (default 10)
//!   --seed N           first seed                   (default 1)
//!   --compare          three-mode table on one seed
//! ftvod-cli check [options]                 exhaustively model-check the
//!                                           membership state machine over a
//!                                           small scope; exits nonzero with
//!                                           a minimal counterexample trace
//!                                           if any invariant fails
//!   --nodes N          formed members               (default 3)
//!   --joiners J        extra nodes that may join    (default 0)
//!   --leaver ID        member that may leave gracefully
//!   --drops K          message-loss budget          (default 0)
//!   --clients M        clients for takeover coverage (default 4)
//!   --depth D          interleaving depth bound     (default 5)
//!   --max-states S     distinct-state cap           (default 400000)
//!   --revert-pr4-fix   disable the PR 4 expulsion fix (must fail)
//! ftvod-cli perf [options]                  run the fixed perf suite and
//!                                           emit BENCH_ftvod.json; with a
//!                                           baseline, gate on regressions
//!   --out FILE         where to write the BENCH file (default BENCH_ftvod.json)
//!   --baseline FILE    compare against a previous BENCH file
//!   --rev REV          git revision to record       (default "unknown")
//!   --date DATE        date to record               (default "unknown")
//!   --counters-only    omit wall-clock fields (byte-identical output)
//!   --flamechart FILE  export a Chrome-trace JSON of fig4_lan spans
//!   --max-wall-ratio R wall-clock regression threshold (default 5.0)
//! ```
//!
//! `lan`, `wan`, `custom` and `fleet` also accept `--net-csv FILE` to
//! export the per-class network traffic counters as CSV.
//!
//! Every subcommand also accepts `--help`/`-h`.

use std::process::ExitCode;
use std::time::Duration;

use ftvod::bench::perf::{run_suite, BenchReport, DEFAULT_MAX_WALL_RATIO};
use ftvod::prelude::*;
use ftvod_mc::{explore, CheckConfig, ProtoConfig, Scenario};

#[derive(Debug, Clone, PartialEq)]
struct CustomOptions {
    servers: u32,
    clients: u32,
    seconds: u64,
    profile: String,
    crashes: Vec<u64>,
    shutdowns: Vec<u64>,
    seed: u64,
    net_csv: Option<String>,
}

impl Default for CustomOptions {
    fn default() -> Self {
        CustomOptions {
            servers: 2,
            clients: 1,
            seconds: 60,
            profile: "lan".to_owned(),
            crashes: Vec::new(),
            shutdowns: Vec::new(),
            seed: 42,
            net_csv: None,
        }
    }
}

fn parse_custom(args: &[String]) -> Result<CustomOptions, String> {
    let mut opts = CustomOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--servers" => {
                opts.servers = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            "--clients" => {
                opts.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--seconds" => {
                opts.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?
            }
            "--profile" => opts.profile = value("--profile")?.clone(),
            "--crash" => opts.crashes.push(
                value("--crash")?
                    .parse()
                    .map_err(|e| format!("--crash: {e}"))?,
            ),
            "--shutdown" => opts.shutdowns.push(
                value("--shutdown")?
                    .parse()
                    .map_err(|e| format!("--shutdown: {e}"))?,
            ),
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--net-csv" => opts.net_csv = Some(value("--net-csv")?.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.servers == 0 || opts.clients == 0 {
        return Err("need at least one server and one client".to_owned());
    }
    if opts.servers <= opts.crashes.len() as u32 + opts.shutdowns.len() as u32 {
        return Err("cannot remove every replica".to_owned());
    }
    Ok(opts)
}

#[derive(Debug, Clone, PartialEq)]
struct FleetOptions {
    servers: u32,
    clients: u32,
    movies: u32,
    zipf: f64,
    cap: Option<u32>,
    seconds: Option<u64>,
    dynamic: bool,
    policy: PolicyKind,
    prefix_secs: Option<u64>,
    prefix_movies: Option<u32>,
    seed: u64,
    net_csv: Option<String>,
}

impl FleetOptions {
    /// The prefix-cache tier configuration, if either prefix flag was
    /// given; the other falls back to the paper default.
    fn prefix_cache(&self) -> Option<PrefixCacheConfig> {
        if self.prefix_secs.is_none() && self.prefix_movies.is_none() {
            return None;
        }
        let mut cfg = PrefixCacheConfig::paper_default();
        if let Some(secs) = self.prefix_secs {
            cfg.prefix = Duration::from_secs(secs);
        }
        if let Some(budget) = self.prefix_movies {
            cfg.budget = budget;
        }
        Some(cfg)
    }
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            servers: 4,
            clients: 96,
            movies: 6,
            zipf: 1.1,
            cap: None,
            seconds: None,
            dynamic: true,
            policy: PolicyKind::Reactive,
            prefix_secs: None,
            prefix_movies: None,
            seed: 42,
            net_csv: None,
        }
    }
}

fn parse_fleet(args: &[String]) -> Result<FleetOptions, String> {
    let mut opts = FleetOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--servers" => {
                opts.servers = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            "--clients" => {
                opts.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--movies" => {
                opts.movies = value("--movies")?
                    .parse()
                    .map_err(|e| format!("--movies: {e}"))?
            }
            "--zipf" => {
                opts.zipf = value("--zipf")?
                    .parse()
                    .map_err(|e| format!("--zipf: {e}"))?
            }
            "--cap" => opts.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
            "--seconds" => {
                opts.seconds = Some(
                    value("--seconds")?
                        .parse()
                        .map_err(|e| format!("--seconds: {e}"))?,
                )
            }
            "--static" => opts.dynamic = false,
            "--policy" => opts.policy = PolicyKind::parse(value("--policy")?)?,
            "--prefix-secs" => {
                opts.prefix_secs = Some(
                    value("--prefix-secs")?
                        .parse()
                        .map_err(|e| format!("--prefix-secs: {e}"))?,
                )
            }
            "--prefix-movies" => {
                opts.prefix_movies = Some(
                    value("--prefix-movies")?
                        .parse()
                        .map_err(|e| format!("--prefix-movies: {e}"))?,
                )
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--net-csv" => opts.net_csv = Some(value("--net-csv")?.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.servers == 0 || opts.clients == 0 || opts.movies == 0 {
        return Err("need at least one server, one client and one movie".to_owned());
    }
    if !opts.zipf.is_finite() || opts.zipf < 0.0 {
        return Err("--zipf must be a finite non-negative exponent".to_owned());
    }
    if opts.prefix_secs == Some(0) {
        return Err("--prefix-secs must be positive (omit it to disable the cache)".to_owned());
    }
    if opts.prefix_movies == Some(0) {
        return Err("--prefix-movies must be positive (omit it to disable the cache)".to_owned());
    }
    if !opts.dynamic && opts.policy != PolicyKind::Reactive {
        return Err("--policy needs the dynamic replica manager (drop --static)".to_owned());
    }
    Ok(opts)
}

fn run_fleet(opts: &FleetOptions) -> Result<(), String> {
    let mut profile = FleetProfile::small_fleet();
    profile.servers = opts.servers;
    profile.clients = opts.clients;
    profile.catalog_size = opts.movies;
    profile.zipf_exponent = opts.zipf;
    // Default cap: total fleet capacity is ~1.5x the offered load, so the
    // fleet as a whole has room, but a single-copy hot movie still
    // bottlenecks on its lone holder — the case dynamic replication fixes.
    let cap = opts
        .cap
        .unwrap_or_else(|| (opts.clients * 3 / 2).div_ceil(opts.servers).max(1));
    profile.sessions_per_server = Some(cap);
    let replication = opts.dynamic.then(ReplicationConfig::paper_default);
    let mut cfg = fleet_config(&profile, replication).with_placement(opts.policy);
    let prefix = opts.prefix_cache();
    if let Some(prefix) = prefix {
        cfg = cfg.with_prefix_cache(prefix);
    }
    let (mut builder, plan) = fleet_builder_with_config(&profile, opts.seed, cfg);
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let end = opts
        .seconds
        .map_or_else(|| profile.run_until(), SimTime::from_secs);
    let prefix_note = prefix.map_or(String::new(), |p| {
        format!(", prefix cache {}s x {}", p.prefix.as_secs(), p.budget)
    });
    println!(
        "fleet: {} servers (cap {cap}), {} sessions over {} movies, zipf {:.2}, {} replication ({} placement){prefix_note}, seed {}",
        profile.servers,
        profile.clients,
        profile.catalog_size,
        profile.zipf_exponent,
        if opts.dynamic { "dynamic" } else { "static" },
        opts.policy.as_str(),
        opts.seed,
    );
    let mut sim = builder.build();
    sim.run_until(end);
    let report = FleetReport::from_sim(&plan, &sim, end);
    print!("{}", report.render());
    if let Some(run) = sim.report() {
        println!(
            "replication: {} bring-up(s), {} retire(s)",
            run.replica_bringups, run.replica_retires
        );
        if run.prefix_serves > 0 {
            println!(
                "prefix tier: {} serve(s), {} handoff(s), {:.1}s of waiting avoided",
                run.prefix_serves, run.prefix_handoffs, run.prefix_seconds_avoided
            );
        }
        println!("\n{}", run.summary_line());
    }
    write_net_csv(&sim, opts.net_csv.as_deref())
}

#[derive(Debug, Clone, PartialEq)]
struct ChaosOptions {
    seeds: u32,
    seed: u64,
    faults: u32,
    clients: u32,
    sync_ms: u64,
    plan: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seeds: 5,
            seed: 1,
            faults: 6,
            clients: 24,
            sync_ms: 500,
            plan: false,
        }
    }
}

fn parse_chaos(args: &[String]) -> Result<ChaosOptions, String> {
    let mut opts = ChaosOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--faults" => {
                opts.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?
            }
            "--clients" => {
                opts.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--sync-ms" => {
                opts.sync_ms = value("--sync-ms")?
                    .parse()
                    .map_err(|e| format!("--sync-ms: {e}"))?
            }
            "--plan" => opts.plan = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_owned());
    }
    if opts.clients == 0 {
        return Err("--clients must be at least 1".to_owned());
    }
    if opts.sync_ms == 0 {
        return Err("--sync-ms must be positive".to_owned());
    }
    Ok(opts)
}

/// The deployment every chaos campaign runs against: a four-server fleet
/// with two initial copies of each movie, sized down so a multi-seed
/// sweep stays fast.
fn chaos_fleet(clients: u32) -> FleetProfile {
    let mut profile = FleetProfile::small_fleet();
    profile.clients = clients;
    profile.catalog_size = 4;
    profile.initial_replicas = 2;
    profile.arrival_window = Duration::from_secs(15);
    profile
}

/// Runs one seeded campaign end to end and returns the oracle's verdicts
/// plus the plan it executed.
fn chaos_campaign(opts: &ChaosOptions, seed: u64) -> (ChaosPlan, OracleReport) {
    let profile = chaos_fleet(opts.clients);
    let (mut builder, _plan) =
        fleet_builder(&profile, seed, Some(ReplicationConfig::paper_default()));
    let mut cfg = VodConfig::paper_default()
        .with_sync_interval(Duration::from_millis(opts.sync_ms))
        .with_dynamic_replication(ReplicationConfig::paper_default());
    if let Some(cap) = profile.sessions_per_server {
        cfg = cfg.with_session_cap(cap);
    }
    builder.config(cfg);
    let mut chaos_profile = ChaosProfile::default_campaign();
    chaos_profile.faults = opts.faults;
    let chaos = ChaosPlan::generate(&chaos_profile, &profile.server_nodes(), seed);
    chaos.apply(&mut builder, &LinkProfile::lan());
    // Room for every event of the run: eviction would blind the oracle.
    builder.record_events(1 << 20);
    let mut sim = builder.build();
    // Past the fault window, the longest restart and the repair bound.
    let end = SimTime::from_secs_f64(profile.run_until().as_secs_f64().max(75.0));
    sim.run_until(end);
    let oracle = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .expect("recording was enabled");
    (chaos, oracle)
}

fn run_chaos(opts: &ChaosOptions) -> Result<(), String> {
    println!(
        "chaos: {} campaign(s) from seed {}, {} fault slot(s), {} session(s), sync {} ms",
        opts.seeds, opts.seed, opts.faults, opts.clients, opts.sync_ms
    );
    let mut failing: Vec<u64> = Vec::new();
    for i in 0..opts.seeds {
        let seed = opts.seed + u64::from(i);
        let (plan, oracle) = chaos_campaign(opts, seed);
        let (crashes, partitions, bursts) = plan.kind_counts();
        println!(
            "seed {seed}: {}  [{crashes} crash/restart, {partitions} partition, {bursts} burst]",
            ftvod_core::oracle::summary_token(&oracle)
        );
        if opts.plan {
            print!("{}", plan.render());
        }
        if !oracle.pass() {
            print!("{oracle}");
            failing.push(seed);
        }
    }
    if failing.is_empty() {
        println!(
            "chaos: {}/{} campaign(s) passed the oracle",
            opts.seeds, opts.seeds
        );
        Ok(())
    } else {
        let first = failing[0];
        Err(format!(
            "{} of {} campaign(s) violated a safety invariant (seeds {:?}); replay with: ftvod-cli chaos --seeds 1 --seed {first} --plan",
            failing.len(),
            opts.seeds,
            failing
        ))
    }
}

#[derive(Debug, Clone, PartialEq)]
struct FlashOptions {
    seeds: u32,
    seed: u64,
    compare: bool,
}

impl Default for FlashOptions {
    fn default() -> Self {
        FlashOptions {
            seeds: 10,
            seed: 1,
            compare: false,
        }
    }
}

fn parse_flash(args: &[String]) -> Result<FlashOptions, String> {
    let mut opts = FlashOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--compare" => opts.compare = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_owned());
    }
    Ok(opts)
}

/// Outcome of one flash-crowd run, reduced to the comparison columns.
struct FlashOutcome {
    oracle: String,
    /// The full per-invariant report, rendered (printed on failure).
    oracle_detail: String,
    pass: bool,
    unserved_seconds: f64,
    never_served: u32,
    bringups: u64,
    /// First bring-up of the shocked tail movie at or after the shock.
    first_bringup: Option<SimTime>,
    prefix_serves: u64,
    prefix_handoffs: u64,
}

/// Runs the fixed flash-crowd profile under one placement policy and
/// reads the headline numbers back out of the trace.
fn flash_campaign(policy: PolicyKind, prefix: bool, seed: u64) -> FlashOutcome {
    let profile = FleetProfile::flash_crowd();
    let shock = profile.shock.expect("flash_crowd has a shock");
    let tail = MovieId(profile.catalog_size);
    let end = profile.run_until();
    let mut cfg =
        fleet_config(&profile, Some(ReplicationConfig::paper_default())).with_placement(policy);
    if prefix {
        cfg = cfg.with_prefix_cache(PrefixCacheConfig::paper_default());
    }
    let (mut builder, plan) = fleet_builder_with_config(&profile, seed, cfg);
    // Room for every event of the run: eviction would blind the oracle.
    builder.record_events(1 << 20);
    let mut sim = builder.build();
    sim.run_until(end);
    let fleet = FleetReport::from_sim(&plan, &sim, end);
    let run = sim.report().expect("recording was enabled");
    let oracle = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .expect("recording was enabled");
    let first_bringup = sim
        .trace()
        .with_recorder(|rec| {
            rec.events()
                .filter_map(|e| match e {
                    VodEvent::ReplicaBringUp { at, movie, .. }
                        if *movie == tail && at.as_micros() >= shock.at.as_micros() as u64 =>
                    {
                        Some(*at)
                    }
                    _ => None,
                })
                .min()
        })
        .expect("recording was enabled");
    FlashOutcome {
        oracle: ftvod_core::oracle::summary_token(&oracle),
        oracle_detail: oracle.to_string(),
        pass: oracle.pass(),
        unserved_seconds: fleet.unserved_seconds,
        never_served: fleet.never_served,
        bringups: run.replica_bringups,
        first_bringup,
        prefix_serves: run.prefix_serves,
        prefix_handoffs: run.prefix_handoffs,
    }
}

fn flash_line(o: &FlashOutcome) -> String {
    format!(
        "{}  unserved {:.1}s, never served {}, {} bring-up(s), first tail bring-up {}, prefix {}/{}",
        o.oracle,
        o.unserved_seconds,
        o.never_served,
        o.bringups,
        o.first_bringup
            .map_or("never".to_owned(), |t| format!("{:.1}s", t.as_secs_f64())),
        o.prefix_serves,
        o.prefix_handoffs,
    )
}

fn run_flash(opts: &FlashOptions) -> Result<(), String> {
    let profile = FleetProfile::flash_crowd();
    let shock = profile.shock.expect("flash_crowd has a shock");
    if opts.compare {
        // EXPERIMENTS.md E7: the three-policy table on one seed. The
        // reactive baseline runs bare; the forecast policies get the
        // prefix-cache tier they are designed to feed.
        println!(
            "flash: policy comparison on seed {}, {}x shock at {}s on movie {}",
            opts.seed,
            shock.factor,
            shock.at.as_secs(),
            profile.catalog_size,
        );
        let mut any_fail = false;
        for (label, policy, prefix) in [
            ("reactive", PolicyKind::Reactive, false),
            ("predictive+prefix", PolicyKind::Predictive, true),
            ("hybrid+prefix", PolicyKind::Hybrid, true),
        ] {
            let outcome = flash_campaign(policy, prefix, opts.seed);
            any_fail |= !outcome.pass;
            println!("{label:<18} {}", flash_line(&outcome));
            if !outcome.pass {
                print!("{}", outcome.oracle_detail);
            }
        }
        return if any_fail {
            Err("a comparison run violated a safety invariant".to_owned())
        } else {
            Ok(())
        };
    }
    println!(
        "flash: {} run(s) from seed {}, predictive placement + prefix cache, {}x shock at {}s",
        opts.seeds,
        opts.seed,
        shock.factor,
        shock.at.as_secs(),
    );
    let mut failing: Vec<u64> = Vec::new();
    for i in 0..opts.seeds {
        let seed = opts.seed + u64::from(i);
        let outcome = flash_campaign(PolicyKind::Predictive, true, seed);
        println!("seed {seed}: {}", flash_line(&outcome));
        if !outcome.pass {
            print!("{}", outcome.oracle_detail);
            failing.push(seed);
        }
    }
    if failing.is_empty() {
        println!(
            "flash: {}/{} run(s) passed the oracle",
            opts.seeds, opts.seeds
        );
        Ok(())
    } else {
        let first = failing[0];
        Err(format!(
            "{} of {} run(s) violated a safety invariant (seeds {:?}); replay with: ftvod-cli flash --seeds 1 --seed {first} --compare",
            failing.len(),
            opts.seeds,
            failing
        ))
    }
}

#[derive(Debug, Clone, PartialEq)]
struct MultiDcOptions {
    seeds: u32,
    seed: u64,
    compare: bool,
}

impl Default for MultiDcOptions {
    fn default() -> Self {
        MultiDcOptions {
            seeds: 10,
            seed: 1,
            compare: false,
        }
    }
}

fn parse_multidc(args: &[String]) -> Result<MultiDcOptions, String> {
    let mut opts = MultiDcOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--compare" => opts.compare = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_owned());
    }
    Ok(opts)
}

/// Outcome of one multi-datacenter run, reduced to the comparison columns.
struct MultiDcOutcome {
    oracle: String,
    /// The full per-invariant report, rendered (printed on failure).
    oracle_detail: String,
    pass: bool,
    served: u32,
    never_served: u32,
    unserved_seconds: f64,
    stalled_seconds: f64,
    total_unserved: f64,
    degraded_serves: u64,
}

/// Runs the fixed two-site scenario (correlated east-site crash at 18s,
/// repair at 40s) under one failover mode and reads the headline numbers
/// back out of the trace.
fn multidc_campaign(mode: FailoverMode, seed: u64) -> MultiDcOutcome {
    let end = multidc_profile().run_until();
    let (mut builder, plan) = multidc_builder(seed, mode);
    // Room for every event of the run: eviction would blind the oracle.
    builder.record_events(1 << 20);
    let mut sim = builder.build();
    sim.run_until(end);
    let fleet = FleetReport::from_sim(&plan, &sim, end);
    let run = sim.trace().report().expect("recording was enabled");
    let oracle = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .expect("recording was enabled");
    MultiDcOutcome {
        oracle: ftvod_core::oracle::summary_token(&oracle),
        oracle_detail: oracle.to_string(),
        pass: oracle.pass(),
        served: fleet.served,
        never_served: fleet.never_served,
        unserved_seconds: fleet.unserved_seconds,
        stalled_seconds: fleet.stalled_seconds,
        total_unserved: fleet.total_unserved(),
        degraded_serves: run.degraded_serves,
    }
}

fn multidc_line(o: &MultiDcOutcome) -> String {
    format!(
        "{}  served {}, never served {}, waited {:.3}s, stalled {:.3}s, unserved total {:.3}s, {} degraded serve(s)",
        o.oracle,
        o.served,
        o.never_served,
        o.unserved_seconds,
        o.stalled_seconds,
        o.total_unserved,
        o.degraded_serves,
    )
}

fn run_multidc(opts: &MultiDcOptions) -> Result<(), String> {
    if opts.compare {
        // EXPERIMENTS.md E8: the three-mode table on one seed. The
        // home-only baseline is expected to strand the east clients (and
        // thereby fail the repair invariants), so only the failover modes
        // are gated on the oracle.
        println!(
            "multidc: failover comparison on seed {}, east site down {}s..{}s",
            opts.seed,
            MULTIDC_FAULT_AT.as_secs(),
            MULTIDC_HEAL_AT.as_secs(),
        );
        let mut any_fail = false;
        for (label, mode, gated) in [
            ("home-only", FailoverMode::HomeOnly, false),
            ("remote", FailoverMode::Remote, true),
            ("remote-degraded", FailoverMode::RemoteDegraded, true),
        ] {
            let outcome = multidc_campaign(mode, opts.seed);
            println!("{label:<16} {}", multidc_line(&outcome));
            if gated && !outcome.pass {
                any_fail = true;
                print!("{}", outcome.oracle_detail);
            }
        }
        return if any_fail {
            Err("a failover run violated a safety invariant".to_owned())
        } else {
            Ok(())
        };
    }
    println!(
        "multidc: {} run(s) from seed {}, remote-degraded failover, east site down {}s..{}s",
        opts.seeds,
        opts.seed,
        MULTIDC_FAULT_AT.as_secs(),
        MULTIDC_HEAL_AT.as_secs(),
    );
    let mut failing: Vec<u64> = Vec::new();
    for i in 0..opts.seeds {
        let seed = opts.seed + u64::from(i);
        let outcome = multidc_campaign(FailoverMode::RemoteDegraded, seed);
        println!("seed {seed}: {}", multidc_line(&outcome));
        if !outcome.pass {
            print!("{}", outcome.oracle_detail);
            failing.push(seed);
        }
    }
    if failing.is_empty() {
        println!(
            "multidc: {}/{} run(s) passed the oracle",
            opts.seeds, opts.seeds
        );
        Ok(())
    } else {
        let first = failing[0];
        Err(format!(
            "{} of {} run(s) violated a safety invariant (seeds {:?}); replay with: ftvod-cli multidc --seeds 1 --seed {first} --compare",
            failing.len(),
            opts.seeds,
            failing
        ))
    }
}

#[derive(Debug, Clone, PartialEq)]
struct CheckOptions {
    nodes: u32,
    joiners: u32,
    leaver: Option<u32>,
    drops: u32,
    clients: u32,
    depth: u32,
    max_states: usize,
    revert_pr4_fix: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            nodes: 3,
            joiners: 0,
            leaver: None,
            drops: 0,
            clients: 4,
            depth: 5,
            max_states: 400_000,
            revert_pr4_fix: false,
        }
    }
}

fn parse_check(args: &[String]) -> Result<CheckOptions, String> {
    let mut opts = CheckOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--nodes" => {
                opts.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--joiners" => {
                opts.joiners = value("--joiners")?
                    .parse()
                    .map_err(|e| format!("--joiners: {e}"))?
            }
            "--leaver" => {
                opts.leaver = Some(
                    value("--leaver")?
                        .parse()
                        .map_err(|e| format!("--leaver: {e}"))?,
                )
            }
            "--drops" => {
                opts.drops = value("--drops")?
                    .parse()
                    .map_err(|e| format!("--drops: {e}"))?
            }
            "--clients" => {
                opts.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--depth" => {
                opts.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--max-states" => {
                opts.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?
            }
            "--revert-pr4-fix" => opts.revert_pr4_fix = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.nodes < 2 {
        return Err("--nodes must be at least 2 (a singleton has no protocol to check)".to_owned());
    }
    if opts.nodes + opts.joiners > 5 {
        return Err("--nodes plus --joiners must stay at or below 5 (state explosion)".to_owned());
    }
    if let Some(l) = opts.leaver {
        if l == 0 || l > opts.nodes {
            return Err(format!(
                "--leaver must name a formed member (1..={})",
                opts.nodes
            ));
        }
    }
    if opts.depth == 0 {
        return Err("--depth must be at least 1".to_owned());
    }
    if opts.max_states == 0 {
        return Err("--max-states must be at least 1".to_owned());
    }
    Ok(opts)
}

fn run_check(opts: &CheckOptions) -> Result<(), String> {
    let mut scn = Scenario::formed(opts.nodes);
    scn.joiners = opts.joiners;
    scn.leavers = opts.leaver.into_iter().collect();
    scn.max_drops = opts.drops;
    scn.clients = opts.clients;
    if opts.revert_pr4_fix {
        scn.cfg = ProtoConfig {
            reform_on_expulsion: false,
        };
    }
    let cfg = CheckConfig {
        depth: opts.depth,
        max_states: opts.max_states,
        check_merge: true,
    };
    println!(
        "check: {} member(s), {} joiner(s), {} leaver(s), budgets {} crash / {} partition / {} drop, depth {}{}",
        scn.members,
        scn.joiners,
        scn.leavers.len(),
        scn.max_crashes,
        scn.max_partitions,
        scn.max_drops,
        cfg.depth,
        if opts.revert_pr4_fix {
            " [PR 4 expulsion fix reverted]"
        } else {
            ""
        },
    );
    let report = explore(&scn, &cfg);
    print!("{report}");
    if report.pass() {
        Ok(())
    } else {
        Err("the model checker found an invariant violation".to_owned())
    }
}

fn profile_by_name(name: &str) -> Result<LinkProfile, String> {
    match name {
        "lan" => Ok(LinkProfile::lan()),
        "wan" => Ok(LinkProfile::wan()),
        "wan-reserved" => Ok(LinkProfile::wan_reserved()),
        other => Err(format!(
            "unknown profile {other} (lan | wan | wan-reserved)"
        )),
    }
}

fn seed_flag(args: &[String]) -> Result<u64, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--seed" {
            let value = it.next().ok_or("--seed needs a value")?;
            return value.parse().map_err(|e| format!("--seed: {e}"));
        }
    }
    Ok(42)
}

fn out_flag(args: &[String]) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            return match it.next() {
                Some(path) => Ok(Some(path.clone())),
                None => Err("--out needs a value".to_owned()),
            };
        }
    }
    Ok(None)
}

fn net_csv_flag(args: &[String]) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--net-csv" {
            return match it.next() {
                Some(path) => Ok(Some(path.clone())),
                None => Err("--net-csv needs a value".to_owned()),
            };
        }
    }
    Ok(None)
}

/// Exports the per-class network counters as CSV when a path was given.
fn write_net_csv(sim: &VodSim, path: Option<&str>) -> Result<(), String> {
    let Some(path) = path else {
        return Ok(());
    };
    let csv = sim.net_stats().to_csv();
    std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote network counters to {path}");
    Ok(())
}

fn summarize(sim: &VodSim, clients: &[ClientId]) {
    println!(
        "\n{:<8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}   served by",
        "client", "received", "displayed", "late", "skipped", "stalls", "emerg"
    );
    for &c in clients {
        let Some(stats) = sim.client_stats(c) else {
            continue;
        };
        println!(
            "{:<8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}   {:?}",
            c.to_string(),
            stats.frames_received,
            sim.client_displayed(c).unwrap_or(0),
            stats.late.total(),
            stats.skipped.total(),
            stats.stalls.total(),
            stats.emergencies.total(),
            sim.owner_of(c),
        );
        for (at, dur) in &stats.interruptions {
            println!("         interruption at t={at:.2}s for {dur:.2}s");
        }
    }
    println!("\nnetwork traffic:\n{}", sim.net_stats());
}

fn run_preset(which: &str, seed: u64, net_csv: Option<&str>) -> Result<(), String> {
    let (mut builder, a, b) = match which {
        "lan" => presets::fig4_lan(seed),
        _ => presets::fig5_wan(seed),
    };
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let (first, second) = if which == "lan" {
        (("crash", a), ("load balance", b))
    } else {
        (("load balance", a), ("crash", b))
    };
    println!("running the paper's {which} scenario (seed {seed}):");
    println!("  {} at {}, {} at {}", first.0, first.1, second.0, second.1);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(92));
    summarize(&sim, &[presets::CLIENT_ID]);
    if let Some(report) = sim.report() {
        println!("\n{}", report.summary_line());
    }
    write_net_csv(&sim, net_csv)
}

/// Runs a preset with event recording and hands the finished sim back.
fn traced_preset(which: &str, seed: u64) -> VodSim {
    let (mut builder, _, _) = match which {
        "lan" => presets::fig4_lan(seed),
        _ => presets::fig5_wan(seed),
    };
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(92));
    sim
}

fn run_trace(which: &str, seed: u64, out: Option<&str>) -> Result<(), String> {
    let sim = traced_preset(which, seed);
    let jsonl = sim.events_jsonl().expect("recording was enabled");
    match out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {} events to {path}", jsonl.lines().count());
        }
        None => print!("{jsonl}"),
    }
    Ok(())
}

fn run_report(which: &str, seed: u64, json: bool) -> Result<(), String> {
    let sim = traced_preset(which, seed);
    let mut report = sim.report().expect("recording was enabled");
    let oracle = sim
        .trace()
        .with_recorder(|rec| OracleReport::check(rec, &OracleConfig::paper_default()))
        .expect("recording was enabled");
    let pass = oracle.pass();
    report.oracle = Some(oracle);
    if json {
        print!("{}", report.to_json());
    } else {
        println!("{which} scenario, seed {seed}:\n");
        print!("{report}");
    }
    if pass {
        Ok(())
    } else {
        Err("the safety oracle flagged an invariant violation".to_owned())
    }
}

#[derive(Debug, Clone, PartialEq)]
struct PerfOptions {
    out: String,
    baseline: Option<String>,
    rev: String,
    date: String,
    counters_only: bool,
    flamechart: Option<String>,
    max_wall_ratio: f64,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            out: "BENCH_ftvod.json".to_owned(),
            baseline: None,
            rev: "unknown".to_owned(),
            date: "unknown".to_owned(),
            counters_only: false,
            flamechart: None,
            max_wall_ratio: DEFAULT_MAX_WALL_RATIO,
        }
    }
}

fn parse_perf(args: &[String]) -> Result<PerfOptions, String> {
    let mut opts = PerfOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--out" => opts.out = value("--out")?.clone(),
            "--baseline" => opts.baseline = Some(value("--baseline")?.clone()),
            "--rev" => opts.rev = value("--rev")?.clone(),
            "--date" => opts.date = value("--date")?.clone(),
            "--counters-only" => opts.counters_only = true,
            "--flamechart" => opts.flamechart = Some(value("--flamechart")?.clone()),
            "--max-wall-ratio" => {
                opts.max_wall_ratio = value("--max-wall-ratio")?
                    .parse()
                    .map_err(|e| format!("--max-wall-ratio: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !opts.max_wall_ratio.is_finite() || opts.max_wall_ratio < 1.0 {
        return Err("--max-wall-ratio must be a finite ratio of at least 1".to_owned());
    }
    Ok(opts)
}

fn run_perf(opts: &PerfOptions) -> Result<(), String> {
    // Load the baseline first so a malformed file fails before the
    // minutes-long suite runs.
    let baseline = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Some(BenchReport::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?)
        }
        None => None,
    };
    println!(
        "perf: running the fixed suite (fig4_lan, fig5_wan, fleet_e3, chaos_5seeds, flash_crowd), rev {}",
        opts.rev
    );
    let capacity = if opts.flamechart.is_some() {
        1 << 18
    } else {
        0
    };
    let (report, flamechart) = run_suite(&opts.rev, &opts.date, capacity);
    print!("{}", report.render_table());
    let json = report.to_json(!opts.counters_only);
    std::fs::write(&opts.out, &json).map_err(|e| format!("writing {}: {e}", opts.out))?;
    println!("wrote {}", opts.out);
    if let Some(path) = &opts.flamechart {
        let trace = flamechart.ok_or("the suite produced no flamechart spans")?;
        std::fs::write(path, &trace).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote flamechart to {path} (open in a Chrome-trace viewer)");
    }
    if let Some(baseline) = baseline {
        let regressions = BenchReport::compare(&baseline, &report, opts.max_wall_ratio);
        if regressions.is_empty() {
            println!(
                "perf gate: no regressions against {}",
                opts.baseline.as_deref().unwrap_or("baseline")
            );
        } else {
            let mut msg = format!("{} perf regression(s):", regressions.len());
            for r in &regressions {
                msg.push_str("\n  ");
                msg.push_str(r);
            }
            return Err(msg);
        }
    }
    Ok(())
}

fn run_custom(opts: &CustomOptions) -> Result<(), String> {
    let profile = profile_by_name(&opts.profile)?;
    let servers: Vec<NodeId> = (1..=opts.servers).map(NodeId).collect();
    let clients: Vec<ClientId> = (1..=opts.clients).map(ClientId).collect();
    let movie = Movie::generate(
        MovieId(1),
        &MovieSpec::paper_default().with_duration(Duration::from_secs(opts.seconds + 40)),
    );
    let mut builder = ScenarioBuilder::new(opts.seed);
    builder.network(profile).movie(movie, &servers);
    for &s in &servers {
        builder.server(s);
    }
    for (i, &c) in clients.iter().enumerate() {
        builder.client(
            c,
            NodeId(100 + c.0),
            MovieId(1),
            SimTime::from_secs(2 + i as u64 / 4),
        );
    }
    // Crashes/shutdowns target the highest-id replicas (the serving order).
    let mut victims = servers.clone();
    for &t in &opts.crashes {
        if let Some(victim) = victims.pop() {
            println!("scheduling crash of {victim} at t={t}s");
            builder.crash_at(SimTime::from_secs(t), victim);
        }
    }
    for &t in &opts.shutdowns {
        if let Some(victim) = victims.pop() {
            println!("scheduling graceful shutdown of {victim} at t={t}s");
            builder.shutdown_at(SimTime::from_secs(t), victim);
        }
    }
    builder.record_events(DEFAULT_EVENT_CAPACITY);
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(opts.seconds));
    summarize(&sim, &clients);
    if let Some(report) = sim.report() {
        println!("\n{}", report.summary_line());
    }
    write_net_csv(&sim, opts.net_csv.as_deref())
}

fn preset_name(args: &[String]) -> Result<&'static str, String> {
    match args.first().map(String::as_str) {
        Some("lan") => Ok("lan"),
        Some("wan") => Ok("wan"),
        Some(other) => Err(format!(
            "expected a preset scenario (lan | wan), got \"{other}\""
        )),
        None => Err("expected a preset scenario (lan | wan)".to_owned()),
    }
}

fn exit_from(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Per-subcommand usage text; anything else gets the overview.
fn usage_for(topic: &str) -> &'static str {
    match topic {
        "lan" | "wan" => {
            "usage: ftvod-cli <lan | wan> [--seed N] [--net-csv FILE]\n\n\
             Run the paper's Figure 4 (lan) or Figure 5 (wan) scenario and\n\
             print per-client statistics plus the run-report summary.\n\n\
             options:\n\
             \x20 --seed N        determinism seed (default 42)\n\
             \x20 --net-csv FILE  export per-class network counters as CSV"
        }
        "trace" => {
            "usage: ftvod-cli trace <lan | wan> [--seed N] [--out FILE]\n\n\
             Run a preset scenario and export the cross-layer event stream\n\
             as JSON Lines (stdout unless --out is given).\n\n\
             options:\n\
             \x20 --seed N     determinism seed (default 42)\n\
             \x20 --out FILE   write the JSONL stream to FILE"
        }
        "report" => {
            "usage: ftvod-cli report <lan | wan> [--seed N] [--json]\n\n\
             Run a preset scenario and print the derived run report:\n\
             takeover-latency breakdowns (view change + resume), delivery\n\
             latency percentiles, glitch windows, replication decisions.\n\n\
             options:\n\
             \x20 --seed N     determinism seed (default 42)\n\
             \x20 --json       emit the machine-readable report (schema\n\
             \x20              ftvod-report/v1) including oracle verdicts"
        }
        "custom" => {
            "usage: ftvod-cli custom [options]\n\n\
             Build your own deployment: N replicas serving one movie to M\n\
             viewers, with crash and graceful-shutdown injections.\n\n\
             options:\n\
             \x20 --servers N    replicas at start                  (default 2)\n\
             \x20 --clients M    viewers                            (default 1)\n\
             \x20 --seconds S    how long to run                    (default 60)\n\
             \x20 --profile P    lan | wan | wan-reserved           (default lan)\n\
             \x20 --crash T      crash the serving replica at T (repeatable)\n\
             \x20 --shutdown T   gracefully detach the serving replica at T\n\
             \x20 --seed N       determinism seed                   (default 42)\n\
             \x20 --net-csv FILE export per-class network counters as CSV"
        }
        "fleet" => {
            "usage: ftvod-cli fleet [options]\n\n\
             Generate a deterministic fleet workload (Zipf popularity,\n\
             Poisson arrivals, VCR mix, churn) and run it with demand-driven\n\
             dynamic replica management. The same seed always produces the\n\
             same report, byte for byte.\n\n\
             options:\n\
             \x20 --servers N    VoD servers                        (default 4)\n\
             \x20 --clients M    generated sessions                 (default 96)\n\
             \x20 --movies K     catalog size                       (default 6)\n\
             \x20 --zipf S       popularity exponent                (default 1.1)\n\
             \x20 --cap C        admission cap per server           (default 3M/2N)\n\
             \x20 --seconds S    run length override (default: until the plan ends)\n\
             \x20 --static       disable the dynamic replica manager\n\
             \x20 --policy P     reactive | predictive | hybrid     (default reactive)\n\
             \x20 --prefix-secs S    enable the prefix-cache tier: cache the\n\
             \x20                    first S seconds of hot movies  (default 10)\n\
             \x20 --prefix-movies K  prefix-cache budget per server (default 4)\n\
             \x20 --seed N       determinism seed                   (default 42)\n\
             \x20 --net-csv FILE export per-class network counters as CSV"
        }
        "flash" => {
            "usage: ftvod-cli flash [options]\n\n\
             Run the fixed flash-crowd scenario — a cold tail movie with a\n\
             single replica whose popularity multiplies mid-run while\n\
             replica bring-up takes seconds — under the predictive\n\
             placement policy with the prefix-cache tier, across a sweep\n\
             of seeds, replaying every trace through the safety oracle.\n\
             The same seed always produces the same line, byte for byte.\n\
             Exits nonzero if any run violates an invariant.\n\n\
             With --compare, one seed is run under all three placement\n\
             policies (reactive bare, predictive and hybrid with the\n\
             prefix cache) and the verdicts are printed side by side —\n\
             the EXPERIMENTS.md E7 table.\n\n\
             options:\n\
             \x20 --seeds N      number of sweep seeds              (default 10)\n\
             \x20 --seed N       first seed                         (default 1)\n\
             \x20 --compare      three-policy comparison on one seed"
        }
        "chaos" => {
            "usage: ftvod-cli chaos [options]\n\n\
             Run seeded fault campaigns — crash/restart cycles, pairwise\n\
             partitions with heals, correlated loss bursts — against a\n\
             four-server fleet, then replay each trace through the safety\n\
             oracle. The same seed always produces the same campaign and\n\
             the same verdicts, byte for byte. Exits nonzero if any\n\
             campaign violates an invariant, printing the first failing\n\
             seed for replay.\n\n\
             options:\n\
             \x20 --seeds N      number of campaign seeds           (default 5)\n\
             \x20 --seed N       first seed                         (default 1)\n\
             \x20 --faults K     fault slots per campaign           (default 6)\n\
             \x20 --clients M    sessions per campaign              (default 24)\n\
             \x20 --sync-ms MS   server sync interval in ms         (default 500)\n\
             \x20 --plan         print each campaign's fault schedule"
        }
        "multidc" => {
            "usage: ftvod-cli multidc [options]\n\n\
             Run the fixed two-datacenter scenario — east and west sites\n\
             over a WAN, geo-affine clients, every movie replicated on\n\
             both sites — with a correlated crash of the whole east site\n\
             mid-run, under remote-degraded failover, across a sweep of\n\
             seeds, replaying every trace through the safety oracle\n\
             (including the site-aware invariants: re-serve after a site\n\
             fault, geo-affinity restored after the heal, degraded serving\n\
             only while the home site is down). The same seed always\n\
             produces the same line, byte for byte. Exits nonzero if any\n\
             run violates an invariant.\n\n\
             With --compare, one seed is run under all three failover\n\
             modes (home-only, remote, remote-degraded) and the verdicts\n\
             are printed side by side — the EXPERIMENTS.md E8 table. The\n\
             home-only baseline strands the east clients by design, so\n\
             only the failover rows are gated on the oracle.\n\n\
             options:\n\
             \x20 --seeds N      number of sweep seeds              (default 10)\n\
             \x20 --seed N       first seed                         (default 1)\n\
             \x20 --compare      three-mode comparison on one seed"
        }
        "check" => {
            "usage: ftvod-cli check [options]\n\n\
             Exhaustively model-check the GCS membership state machine\n\
             (gcs::proto) over a small scope: breadth-first exploration of\n\
             every interleaving of message delivery, loss, crash, restart,\n\
             partition and heal, with safety invariants (view agreement,\n\
             member-in-own-view) checked at every distinct state and\n\
             liveness (eventual merge, takeover coverage) checked via a\n\
             deterministic fair closure. The same scope always renders the\n\
             same report, byte for byte. Exits nonzero with a minimal\n\
             counterexample trace if any invariant fails.\n\n\
             options:\n\
             \x20 --nodes N          formed members                 (default 3)\n\
             \x20 --joiners J        extra nodes that may join      (default 0)\n\
             \x20 --leaver ID        member that may leave gracefully\n\
             \x20 --drops K          message-loss budget            (default 0)\n\
             \x20 --clients M        clients for takeover coverage  (default 4)\n\
             \x20 --depth D          interleaving depth bound       (default 5)\n\
             \x20 --max-states S     distinct-state cap             (default 400000)\n\
             \x20 --revert-pr4-fix   disable the PR 4 expulsion fix; the\n\
             \x20                    checker must rediscover the merge\n\
             \x20                    deadlock and exit nonzero"
        }
        "perf" => {
            "usage: ftvod-cli perf [options]\n\n\
             Run the fixed perf suite (fig4_lan, fig5_wan, fleet_e3,\n\
             chaos_5seeds, flash_crowd) with hot-path cost profiling on and write the\n\
             schema-versioned BENCH_ftvod.json: per-scenario wall-clock,\n\
             events/second, peak concurrent sessions and the deterministic\n\
             counter table. With --baseline, compare against a previous\n\
             BENCH file and exit nonzero on any regression: counters must\n\
             match exactly, wall-clock must stay within the ratio\n\
             threshold.\n\n\
             options:\n\
             \x20 --out FILE          BENCH output path      (default BENCH_ftvod.json)\n\
             \x20 --baseline FILE     gate against a previous BENCH file\n\
             \x20 --rev REV           git revision to record (default unknown)\n\
             \x20 --date DATE         date to record         (default unknown)\n\
             \x20 --counters-only     omit wall-clock fields; output is\n\
             \x20                     byte-identical across runs\n\
             \x20 --flamechart FILE   export fig4_lan spans as Chrome-trace JSON\n\
             \x20 --max-wall-ratio R  wall-clock threshold   (default 5.0)"
        }
        _ => {
            "usage: ftvod-cli <command> [options]\n\n\
             commands:\n\
             \x20 lan | wan   the paper's Figure 4 / Figure 5 scenario\n\
             \x20 trace       run a preset, export the event stream as JSONL\n\
             \x20 report      run a preset, print the derived run report\n\
             \x20 custom      build your own deployment (crashes, shutdowns)\n\
             \x20 fleet       generated fleet workload with dynamic replication\n\
             \x20 flash       flash-crowd sweep: predictive placement + prefix\n\
             \x20             cache vs a 10x popularity shock\n\
             \x20 chaos       seeded fault campaigns checked by the safety oracle\n\
             \x20 multidc     two-datacenter site-crash sweep: cross-DC rescue\n\
             \x20             and degraded-mode serving vs a home-only baseline\n\
             \x20 check       exhaustively model-check the membership protocol\n\
             \x20 perf        run the perf suite, write BENCH_ftvod.json, gate\n\
             \x20             against a baseline\n\n\
             Run `ftvod-cli <command> --help` for the command's options."
        }
    }
}

fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("{}", usage_for("overview"));
        return ExitCode::FAILURE;
    };
    if matches!(cmd, "help" | "--help" | "-h") {
        println!(
            "{}",
            usage_for(args.get(1).map_or("overview", String::as_str))
        );
        return ExitCode::SUCCESS;
    }
    if wants_help(&args[1..]) {
        println!("{}", usage_for(cmd));
        return ExitCode::SUCCESS;
    }
    match cmd {
        "lan" | "wan" => exit_from(seed_flag(&args).and_then(|seed| {
            let net_csv = net_csv_flag(&args)?;
            run_preset(cmd, seed, net_csv.as_deref())
        })),
        "trace" => exit_from(preset_name(&args[1..]).and_then(|which| {
            let seed = seed_flag(&args)?;
            let out = out_flag(&args)?;
            run_trace(which, seed, out.as_deref())
        })),
        "report" => exit_from(preset_name(&args[1..]).and_then(|which| {
            let json = args[1..].iter().any(|a| a == "--json");
            run_report(which, seed_flag(&args)?, json)
        })),
        "custom" => exit_from(parse_custom(&args[1..]).and_then(|opts| run_custom(&opts))),
        "fleet" => exit_from(parse_fleet(&args[1..]).and_then(|opts| run_fleet(&opts))),
        "flash" => exit_from(parse_flash(&args[1..]).and_then(|opts| run_flash(&opts))),
        "chaos" => exit_from(parse_chaos(&args[1..]).and_then(|opts| run_chaos(&opts))),
        "multidc" => exit_from(parse_multidc(&args[1..]).and_then(|opts| run_multidc(&opts))),
        "check" => exit_from(parse_check(&args[1..]).and_then(|opts| run_check(&opts))),
        "perf" => exit_from(parse_perf(&args[1..]).and_then(|opts| run_perf(&opts))),
        other => {
            eprintln!("unknown command \"{other}\"\n\n{}", usage_for("overview"));
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_parse() {
        let opts = parse_custom(&[]).unwrap();
        assert_eq!(opts, CustomOptions::default());
    }

    #[test]
    fn full_flag_set_parses() {
        let opts = parse_custom(&strings(&[
            "--servers",
            "4",
            "--clients",
            "3",
            "--seconds",
            "90",
            "--profile",
            "wan",
            "--crash",
            "20",
            "--crash",
            "40",
            "--shutdown",
            "60",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.servers, 4);
        assert_eq!(opts.clients, 3);
        assert_eq!(opts.seconds, 90);
        assert_eq!(opts.profile, "wan");
        assert_eq!(opts.crashes, vec![20, 40]);
        assert_eq!(opts.shutdowns, vec![60]);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse_custom(&strings(&["--bogus"])).is_err());
        assert!(parse_custom(&strings(&["--servers"])).is_err());
        assert!(parse_custom(&strings(&["--servers", "x"])).is_err());
    }

    #[test]
    fn rejects_removing_every_replica() {
        let err = parse_custom(&strings(&[
            "--servers",
            "2",
            "--crash",
            "10",
            "--crash",
            "20",
        ]))
        .unwrap_err();
        assert!(err.contains("every replica"));
    }

    #[test]
    fn trace_and_report_args_parse() {
        assert_eq!(preset_name(&strings(&["lan"])), Ok("lan"));
        assert_eq!(preset_name(&strings(&["wan", "--seed", "7"])), Ok("wan"));
        assert!(preset_name(&strings(&["atm"])).is_err());
        assert!(preset_name(&[]).is_err());
        assert_eq!(
            out_flag(&strings(&["trace", "lan", "--out", "e.jsonl"])),
            Ok(Some("e.jsonl".to_owned()))
        );
        assert_eq!(out_flag(&strings(&["trace", "lan"])), Ok(None));
        assert!(out_flag(&strings(&["trace", "lan", "--out"])).is_err());
        assert_eq!(seed_flag(&strings(&["lan"])), Ok(42));
        assert_eq!(seed_flag(&strings(&["lan", "--seed", "7"])), Ok(7));
        assert!(seed_flag(&strings(&["lan", "--seed", "banana"])).is_err());
        assert!(seed_flag(&strings(&["lan", "--seed"])).is_err());
    }

    #[test]
    fn profiles_resolve() {
        assert!(profile_by_name("lan").is_ok());
        assert!(profile_by_name("wan").is_ok());
        assert!(profile_by_name("wan-reserved").is_ok());
        assert!(profile_by_name("atm").is_err());
    }

    #[test]
    fn fleet_defaults_parse() {
        let opts = parse_fleet(&[]).unwrap();
        assert_eq!(opts, FleetOptions::default());
        assert!(opts.dynamic);
    }

    #[test]
    fn fleet_full_flag_set_parses() {
        let opts = parse_fleet(&strings(&[
            "--servers",
            "8",
            "--clients",
            "500",
            "--movies",
            "12",
            "--zipf",
            "1.3",
            "--cap",
            "40",
            "--seconds",
            "120",
            "--static",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.servers, 8);
        assert_eq!(opts.clients, 500);
        assert_eq!(opts.movies, 12);
        assert!((opts.zipf - 1.3).abs() < 1e-12);
        assert_eq!(opts.cap, Some(40));
        assert_eq!(opts.seconds, Some(120));
        assert!(!opts.dynamic);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn fleet_policy_and_prefix_flags_parse() {
        let opts = parse_fleet(&strings(&[
            "--policy",
            "predictive",
            "--prefix-secs",
            "8",
            "--prefix-movies",
            "2",
        ]))
        .unwrap();
        assert_eq!(opts.policy, PolicyKind::Predictive);
        let prefix = opts.prefix_cache().unwrap();
        assert_eq!(prefix.prefix, Duration::from_secs(8));
        assert_eq!(prefix.budget, 2);
        // Either prefix flag alone enables the tier, defaulting the other.
        let secs_only = parse_fleet(&strings(&["--prefix-secs", "8"])).unwrap();
        assert_eq!(
            secs_only.prefix_cache().unwrap().budget,
            PrefixCacheConfig::paper_default().budget
        );
        let movies_only = parse_fleet(&strings(&["--prefix-movies", "2"])).unwrap();
        assert_eq!(
            movies_only.prefix_cache().unwrap().prefix,
            PrefixCacheConfig::paper_default().prefix
        );
        // Neither flag leaves the cache off.
        assert_eq!(parse_fleet(&[]).unwrap().prefix_cache(), None);
        let hybrid = parse_fleet(&strings(&["--policy", "hybrid"])).unwrap();
        assert_eq!(hybrid.policy, PolicyKind::Hybrid);
    }

    #[test]
    fn fleet_rejects_bad_inputs() {
        assert!(parse_fleet(&strings(&["--bogus"])).is_err());
        assert!(parse_fleet(&strings(&["--servers", "0"])).is_err());
        assert!(parse_fleet(&strings(&["--movies", "0"])).is_err());
        assert!(parse_fleet(&strings(&["--zipf", "-1"])).is_err());
        assert!(parse_fleet(&strings(&["--zipf", "nan"])).is_err());
        assert!(parse_fleet(&strings(&["--cap"])).is_err());
        assert!(parse_fleet(&strings(&["--policy", "psychic"])).is_err());
        assert!(parse_fleet(&strings(&["--policy"])).is_err());
        assert!(parse_fleet(&strings(&["--prefix-secs", "0"])).is_err());
        assert!(parse_fleet(&strings(&["--prefix-movies", "0"])).is_err());
        assert!(parse_fleet(&strings(&["--static", "--policy", "predictive"])).is_err());
    }

    #[test]
    fn flash_defaults_parse() {
        let opts = parse_flash(&[]).unwrap();
        assert_eq!(opts, FlashOptions::default());
        assert_eq!(opts.seeds, 10);
        assert_eq!(opts.seed, 1);
        assert!(!opts.compare);
    }

    #[test]
    fn flash_full_flag_set_parses() {
        let opts = parse_flash(&strings(&["--seeds", "3", "--seed", "9", "--compare"])).unwrap();
        assert_eq!(opts.seeds, 3);
        assert_eq!(opts.seed, 9);
        assert!(opts.compare);
    }

    #[test]
    fn flash_rejects_bad_inputs() {
        assert!(parse_flash(&strings(&["--bogus"])).is_err());
        assert!(parse_flash(&strings(&["--seeds", "0"])).is_err());
        assert!(parse_flash(&strings(&["--seeds"])).is_err());
        assert!(parse_flash(&strings(&["--seed", "x"])).is_err());
    }

    #[test]
    fn chaos_defaults_parse() {
        let opts = parse_chaos(&[]).unwrap();
        assert_eq!(opts, ChaosOptions::default());
        assert_eq!(opts.seeds, 5);
        assert_eq!(opts.sync_ms, 500);
        assert!(!opts.plan);
    }

    #[test]
    fn chaos_full_flag_set_parses() {
        let opts = parse_chaos(&strings(&[
            "--seeds",
            "25",
            "--seed",
            "9",
            "--faults",
            "4",
            "--clients",
            "12",
            "--sync-ms",
            "20000",
            "--plan",
        ]))
        .unwrap();
        assert_eq!(opts.seeds, 25);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.faults, 4);
        assert_eq!(opts.clients, 12);
        assert_eq!(opts.sync_ms, 20000);
        assert!(opts.plan);
    }

    #[test]
    fn chaos_rejects_bad_inputs() {
        assert!(parse_chaos(&strings(&["--bogus"])).is_err());
        assert!(parse_chaos(&strings(&["--seeds", "0"])).is_err());
        assert!(parse_chaos(&strings(&["--clients", "0"])).is_err());
        assert!(parse_chaos(&strings(&["--sync-ms", "0"])).is_err());
        assert!(parse_chaos(&strings(&["--seeds"])).is_err());
    }

    #[test]
    fn multidc_defaults_parse() {
        let opts = parse_multidc(&[]).unwrap();
        assert_eq!(opts, MultiDcOptions::default());
        assert_eq!(opts.seeds, 10);
        assert_eq!(opts.seed, 1);
        assert!(!opts.compare);
    }

    #[test]
    fn multidc_full_flag_set_parses() {
        let opts = parse_multidc(&strings(&["--seeds", "3", "--seed", "9", "--compare"])).unwrap();
        assert_eq!(opts.seeds, 3);
        assert_eq!(opts.seed, 9);
        assert!(opts.compare);
    }

    #[test]
    fn multidc_rejects_bad_inputs() {
        assert!(parse_multidc(&strings(&["--bogus"])).is_err());
        assert!(parse_multidc(&strings(&["--seeds", "0"])).is_err());
        assert!(parse_multidc(&strings(&["--seeds"])).is_err());
        assert!(parse_multidc(&strings(&["--seed", "x"])).is_err());
    }

    #[test]
    fn check_defaults_parse() {
        let opts = parse_check(&[]).unwrap();
        assert_eq!(opts, CheckOptions::default());
        assert_eq!(opts.nodes, 3);
        assert_eq!(opts.depth, 5);
        assert!(!opts.revert_pr4_fix);
    }

    #[test]
    fn check_full_flag_set_parses() {
        let opts = parse_check(&strings(&[
            "--nodes",
            "2",
            "--joiners",
            "1",
            "--leaver",
            "2",
            "--drops",
            "2",
            "--clients",
            "6",
            "--depth",
            "6",
            "--max-states",
            "100000",
            "--revert-pr4-fix",
        ]))
        .unwrap();
        assert_eq!(opts.nodes, 2);
        assert_eq!(opts.joiners, 1);
        assert_eq!(opts.leaver, Some(2));
        assert_eq!(opts.drops, 2);
        assert_eq!(opts.clients, 6);
        assert_eq!(opts.depth, 6);
        assert_eq!(opts.max_states, 100_000);
        assert!(opts.revert_pr4_fix);
    }

    #[test]
    fn check_rejects_bad_inputs() {
        assert!(parse_check(&strings(&["--bogus"])).is_err());
        assert!(parse_check(&strings(&["--nodes", "1"])).is_err());
        assert!(parse_check(&strings(&["--nodes", "4", "--joiners", "2"])).is_err());
        assert!(parse_check(&strings(&["--leaver", "4"])).is_err());
        assert!(parse_check(&strings(&["--leaver", "0"])).is_err());
        assert!(parse_check(&strings(&["--depth", "0"])).is_err());
        assert!(parse_check(&strings(&["--max-states", "0"])).is_err());
        assert!(parse_check(&strings(&["--depth"])).is_err());
    }

    #[test]
    fn every_command_has_usage_text() {
        for cmd in [
            "lan", "wan", "trace", "report", "custom", "fleet", "flash", "chaos", "multidc",
            "check", "perf", "overview",
        ] {
            let text = usage_for(cmd);
            assert!(text.starts_with("usage:"), "{cmd} usage malformed");
        }
        assert!(usage_for("fleet").contains("--zipf"));
        assert!(usage_for("fleet").contains("--policy"));
        assert!(usage_for("fleet").contains("--prefix-secs"));
        assert!(usage_for("flash").contains("--compare"));
        assert!(usage_for("chaos").contains("--sync-ms"));
        assert!(usage_for("multidc").contains("--compare"));
        assert!(usage_for("overview").contains("multidc"));
        assert!(usage_for("overview").contains("flash"));
        assert!(usage_for("overview").contains("chaos"));
        assert!(usage_for("overview").contains("check"));
        assert!(usage_for("overview").contains("perf"));
        assert!(usage_for("perf").contains("flash_crowd"));
        assert!(usage_for("check").contains("--revert-pr4-fix"));
        assert!(usage_for("check").contains("--depth"));
        assert!(usage_for("perf").contains("--counters-only"));
        assert!(usage_for("report").contains("--json"));
        assert!(usage_for("fleet").contains("--net-csv"));
    }

    #[test]
    fn perf_defaults_parse() {
        let opts = parse_perf(&[]).unwrap();
        assert_eq!(opts, PerfOptions::default());
        assert_eq!(opts.out, "BENCH_ftvod.json");
        assert!(!opts.counters_only);
        assert!((opts.max_wall_ratio - DEFAULT_MAX_WALL_RATIO).abs() < 1e-12);
    }

    #[test]
    fn perf_full_flag_set_parses() {
        let opts = parse_perf(&strings(&[
            "--out",
            "bench.json",
            "--baseline",
            "BENCH_ftvod.json",
            "--rev",
            "abc123",
            "--date",
            "2026-08-07",
            "--counters-only",
            "--flamechart",
            "flame.json",
            "--max-wall-ratio",
            "3.5",
        ]))
        .unwrap();
        assert_eq!(opts.out, "bench.json");
        assert_eq!(opts.baseline.as_deref(), Some("BENCH_ftvod.json"));
        assert_eq!(opts.rev, "abc123");
        assert_eq!(opts.date, "2026-08-07");
        assert!(opts.counters_only);
        assert_eq!(opts.flamechart.as_deref(), Some("flame.json"));
        assert!((opts.max_wall_ratio - 3.5).abs() < 1e-12);
    }

    #[test]
    fn perf_rejects_bad_inputs() {
        assert!(parse_perf(&strings(&["--bogus"])).is_err());
        assert!(parse_perf(&strings(&["--out"])).is_err());
        assert!(parse_perf(&strings(&["--max-wall-ratio", "0.5"])).is_err());
        assert!(parse_perf(&strings(&["--max-wall-ratio", "nan"])).is_err());
    }

    #[test]
    fn net_csv_flag_parses() {
        assert_eq!(
            net_csv_flag(&strings(&["lan", "--net-csv", "net.csv"])),
            Ok(Some("net.csv".to_owned()))
        );
        assert_eq!(net_csv_flag(&strings(&["lan"])), Ok(None));
        assert!(net_csv_flag(&strings(&["lan", "--net-csv"])).is_err());
        let custom = parse_custom(&strings(&["--net-csv", "net.csv"])).unwrap();
        assert_eq!(custom.net_csv.as_deref(), Some("net.csv"));
        let fleet = parse_fleet(&strings(&["--net-csv", "net.csv"])).unwrap();
        assert_eq!(fleet.net_csv.as_deref(), Some("net.csv"));
    }

    #[test]
    fn help_flags_are_detected() {
        assert!(wants_help(&strings(&["--servers", "4", "--help"])));
        assert!(wants_help(&strings(&["-h"])));
        assert!(!wants_help(&strings(&["--servers", "4"])));
    }
}

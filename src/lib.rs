//! # ftvod — Fault Tolerant Video on Demand Services
//!
//! A from-scratch Rust reproduction of *"Fault Tolerant Video on Demand
//! Services"* (Tal Anker, Danny Dolev, Idit Keidar — ICDCS 1999): a highly
//! available distributed VoD service in which movies are replicated across
//! servers coordinated by a group communication system; when a server
//! crashes or a new one is brought up, clients migrate transparently —
//! the transition is not noticeable to a human observer.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] ([`simnet`]) — the deterministic discrete-event network
//!   simulator that replaces the paper's physical LAN/WAN testbeds;
//! * [`group`] ([`gcs`]) — the Transis-style group communication
//!   substrate: failure detection, view-synchronous membership, reliable
//!   FIFO multicast;
//! * [`video`] ([`media`]) — the MPEG-like media model: GOP structure,
//!   synthetic movies, the hardware-decoder model, quality adaptation;
//! * [`vod`] ([`ftvod_core`]) — the paper's contribution: servers,
//!   clients, flow control, emergency refill, state synchronization,
//!   takeover and load balancing, plus the scenario harness regenerating
//!   the paper's measurements.
//!
//! # Quickstart
//!
//! Run a two-replica deployment, kill the serving server mid-movie, and
//! verify the viewer never notices:
//!
//! ```
//! use ftvod::prelude::*;
//! use std::time::Duration;
//!
//! let movie = Movie::generate(
//!     MovieId(1),
//!     &MovieSpec::paper_default().with_duration(Duration::from_secs(60)),
//! );
//! let mut builder = ScenarioBuilder::new(42);
//! builder
//!     .network(LinkProfile::lan())
//!     .movie(movie, &[NodeId(1), NodeId(2)])
//!     .server(NodeId(1))
//!     .server(NodeId(2))
//!     .client(ClientId(1), NodeId(100), MovieId(1), SimTime::from_secs(2))
//!     .crash_at(SimTime::from_secs(20), NodeId(2));
//! let mut sim = builder.build();
//! sim.run_until(SimTime::from_secs(40));
//!
//! let stats = sim.client_stats(ClientId(1)).unwrap();
//! assert_eq!(stats.stalls.total(), 0, "failover was invisible");
//! assert_eq!(sim.owner_of(ClientId(1)), Some(NodeId(1)));
//! ```
//!
//! See `examples/` for complete scenarios and `crates/bench` for the
//! harness regenerating every figure and table of the paper's evaluation
//! (documented in EXPERIMENTS.md).

#![warn(missing_docs)]

/// The discrete-event network simulator (re-export of [`simnet`]).
pub mod sim {
    pub use simnet::*;
}

/// The group communication substrate (re-export of [`gcs`]).
pub mod group {
    pub use gcs::*;
}

/// The MPEG-like media model (re-export of [`media`]).
pub mod video {
    pub use media::*;
}

/// The VoD service itself (re-export of [`ftvod_core`]).
pub mod vod {
    pub use ftvod_core::*;
}

/// The experiment and benchmark harness (re-export of [`ftvod_bench`]):
/// shared experiment utilities plus the fixed perf suite behind
/// `ftvod-cli perf` and the CI regression gate.
pub mod bench {
    pub use ftvod_bench::*;
}

/// The most commonly needed names in one import.
pub mod prelude {
    pub use ftvod_core::chaos::{ChaosFault, ChaosPlan, ChaosProfile};
    pub use ftvod_core::client::{ClientStats, VodClient, WatchRequest};
    pub use ftvod_core::config::{
        FailoverMode, MultiDcConfig, PrefixCacheConfig, ReplicationConfig, ResumePolicy, SiteMap,
        TakeoverPolicy, VodConfig,
    };
    pub use ftvod_core::forecast::PolicyKind;
    pub use ftvod_core::oracle::{OracleConfig, OracleReport, Verdict};
    pub use ftvod_core::profile::{ProfileHandle, ProfileReport, Subsystem};
    pub use ftvod_core::protocol::{ClientId, VodWire};
    pub use ftvod_core::scenario::{presets, ScenarioBuilder, VcrOp, VodSim};
    pub use ftvod_core::server::{Replica, VodServer};
    pub use ftvod_core::trace::{RunReport, TraceHandle, VodEvent, DEFAULT_EVENT_CAPACITY};
    pub use ftvod_core::workload::{
        fleet_builder, fleet_builder_with_config, fleet_config, multidc_builder, multidc_profile,
        FleetPlan, FleetProfile, FleetReport, ZipfSampler, MULTIDC_FAULT_AT, MULTIDC_HEAL_AT,
    };
    pub use media::{FrameNo, Movie, MovieId, MovieSpec};
    pub use simnet::{LinkProfile, NodeId, SimTime};
}
